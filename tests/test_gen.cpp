#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "gen/alya.hpp"
#include "gen/climate.hpp"
#include "gen/delaunay2d.hpp"
#include "gen/delaunay3d.hpp"
#include "gen/meshes2d.hpp"
#include "gen/registry.hpp"
#include "gen/rgg.hpp"
#include "geometry/box.hpp"
#include "graph/csr.hpp"
#include "support/rng.hpp"

namespace {

using namespace geo;
using namespace geo::gen;

TEST(Rgg2d, EdgesRespectRadius) {
    const double r = 0.05;
    const auto mesh = rgg2d(2000, r, 7);
    for (graph::Vertex v = 0; v < mesh.graph.numVertices(); ++v)
        for (const auto u : mesh.graph.neighbors(v))
            EXPECT_LE(distance(mesh.points[static_cast<std::size_t>(v)],
                               mesh.points[static_cast<std::size_t>(u)]),
                      r + 1e-12);
}

TEST(Rgg2d, NoMissingEdgesWithinRadius) {
    const double r = 0.08;
    const auto mesh = rgg2d(500, r, 9);
    for (graph::Vertex v = 0; v < mesh.graph.numVertices(); ++v) {
        const auto nbrs = mesh.graph.neighbors(v);
        const std::set<graph::Vertex> nbrSet(nbrs.begin(), nbrs.end());
        for (graph::Vertex u = 0; u < mesh.graph.numVertices(); ++u) {
            if (u == v) continue;
            const bool close = distance(mesh.points[static_cast<std::size_t>(v)],
                                        mesh.points[static_cast<std::size_t>(u)]) <= r;
            EXPECT_EQ(close, nbrSet.count(u) > 0) << "pair " << v << "," << u;
        }
    }
}

TEST(Rgg2d, DefaultRadiusYieldsConnectedGraph) {
    const auto mesh = rgg2d(4000, 0.0, 11);
    EXPECT_EQ(graph::connectedComponents(mesh.graph).count, 1);
}

TEST(Rgg3d, DefaultRadiusYieldsConnectedGraph) {
    const auto mesh = rgg3d(3000, 0.0, 13);
    EXPECT_EQ(graph::connectedComponents(mesh.graph).count, 1);
    EXPECT_EQ(mesh.meshClass, MeshClass::Dim3);
}

TEST(Rgg, IsDeterministicPerSeed) {
    const auto a = rgg2d(300, 0.1, 5);
    const auto b = rgg2d(300, 0.1, 5);
    EXPECT_EQ(a.points, b.points);
    EXPECT_EQ(a.graph.targets(), b.graph.targets());
}

// --- Delaunay 2D ---

/// Verify the empty-circumcircle property on every triangle against all
/// points (brute force — keep n small).
void expectDelaunay2d(std::span<const Point2> pts) {
    const auto tris = delaunayTriangles2d(pts);
    ASSERT_FALSE(tris.empty());
    for (const auto& t : tris) {
        const Point2 &a = pts[static_cast<std::size_t>(t[0])],
                     &b = pts[static_cast<std::size_t>(t[1])],
                     &c = pts[static_cast<std::size_t>(t[2])];
        // Circumcenter via perpendicular bisector intersection.
        const double d = 2.0 * (a[0] * (b[1] - c[1]) + b[0] * (c[1] - a[1]) +
                                c[0] * (a[1] - b[1]));
        ASSERT_NE(d, 0.0);
        const double a2 = a[0] * a[0] + a[1] * a[1];
        const double b2 = b[0] * b[0] + b[1] * b[1];
        const double c2 = c[0] * c[0] + c[1] * c[1];
        const Point2 center{{(a2 * (b[1] - c[1]) + b2 * (c[1] - a[1]) + c2 * (a[1] - b[1])) / d,
                             (a2 * (c[0] - b[0]) + b2 * (a[0] - c[0]) + c2 * (b[0] - a[0])) / d}};
        const double r = distance(center, a);
        for (std::size_t p = 0; p < pts.size(); ++p) {
            if (static_cast<std::int32_t>(p) == t[0] || static_cast<std::int32_t>(p) == t[1] ||
                static_cast<std::int32_t>(p) == t[2])
                continue;
            EXPECT_GE(distance(center, pts[p]), r - 1e-9)
                << "point " << p << " inside circumcircle";
        }
    }
}

TEST(Delaunay2d, EmptyCircumcircleProperty) {
    Xoshiro256 rng(101);
    std::vector<Point2> pts;
    for (int i = 0; i < 200; ++i) pts.push_back(Point2{{rng.uniform(), rng.uniform()}});
    expectDelaunay2d(pts);
}

TEST(Delaunay2d, EulerFormulaHolds) {
    // For a Delaunay triangulation of points in general position:
    // triangles = 2n - 2 - h, edges = 3n - 3 - h (h = hull vertices).
    const auto mesh = delaunay2d(3000, 17);
    const auto tris = delaunayTriangles2d(mesh.points);
    const auto n = static_cast<std::int64_t>(mesh.points.size());
    const std::int64_t f = static_cast<std::int64_t>(tris.size());
    const std::int64_t e = mesh.graph.numEdges();
    // Euler: n - e + (f + 1) = 2  =>  e = n + f - 1.
    EXPECT_EQ(e, n + f - 1);
    EXPECT_EQ(graph::connectedComponents(mesh.graph).count, 1);
}

TEST(Delaunay2d, HandlesSmallInputs) {
    std::vector<Point2> tri{{{0.0, 0.0}}, {{1.0, 0.0}}, {{0.5, 1.0}}};
    const auto tris = delaunayTriangles2d(tri);
    ASSERT_EQ(tris.size(), 1u);
    const auto g = delaunayTriangulate2d(tri);
    EXPECT_EQ(g.numEdges(), 3);
    std::vector<Point2> two{{{0.0, 0.0}}, {{1.0, 0.0}}};
    EXPECT_THROW((void)delaunayTriangulate2d(two), std::invalid_argument);
}

TEST(Delaunay2d, GraphIsValidOnClusteredInput) {
    // Highly nonuniform input stresses the cavity machinery.
    Xoshiro256 rng(19);
    std::vector<Point2> pts;
    for (int i = 0; i < 1000; ++i) {
        const double cluster = rng.below(3) * 0.31;
        pts.push_back(Point2{{cluster + 0.01 * rng.uniform(), cluster + 0.01 * rng.uniform()}});
    }
    const auto g = delaunayTriangulate2d(pts);
    EXPECT_NO_THROW(g.validate());
    EXPECT_EQ(graph::connectedComponents(g).count, 1);
}

TEST(Delaunay2d, MeanDegreeIsNearSix) {
    const auto mesh = delaunay2d(5000, 23);
    const double meanDegree =
        2.0 * static_cast<double>(mesh.numEdges()) / static_cast<double>(mesh.numVertices());
    EXPECT_GT(meanDegree, 5.5);
    EXPECT_LT(meanDegree, 6.0);
}

// --- Delaunay 3D ---

TEST(Delaunay3d, EmptyCircumsphereProperty) {
    Xoshiro256 rng(103);
    std::vector<Point3> pts;
    for (int i = 0; i < 120; ++i)
        pts.push_back(Point3{{rng.uniform(), rng.uniform(), rng.uniform()}});
    const auto tets = delaunayTets3d(pts);
    ASSERT_FALSE(tets.empty());
    for (const auto& t : tets) {
        // Circumcenter: solve |x-a|^2 = |x-b|^2 = |x-c|^2 = |x-d|^2 via 3x3
        // linear system.
        const Point3 &a = pts[static_cast<std::size_t>(t[0])],
                     &b = pts[static_cast<std::size_t>(t[1])],
                     &c = pts[static_cast<std::size_t>(t[2])],
                     &d = pts[static_cast<std::size_t>(t[3])];
        double m[3][4];
        const Point3 rows[3] = {b - a, c - a, d - a};
        const double rhs[3] = {0.5 * (dot(b, b) - dot(a, a)), 0.5 * (dot(c, c) - dot(a, a)),
                               0.5 * (dot(d, d) - dot(a, a))};
        for (int r = 0; r < 3; ++r) {
            for (int col = 0; col < 3; ++col) m[r][col] = rows[r][col];
            m[r][3] = rhs[r];
        }
        // Gaussian elimination.
        for (int col = 0; col < 3; ++col) {
            int piv = col;
            for (int r = col + 1; r < 3; ++r)
                if (std::abs(m[r][col]) > std::abs(m[piv][col])) piv = r;
            std::swap(m[col], m[piv]);
            ASSERT_NE(m[col][col], 0.0);
            for (int r = 0; r < 3; ++r) {
                if (r == col) continue;
                const double f = m[r][col] / m[col][col];
                for (int cc = col; cc < 4; ++cc) m[r][cc] -= f * m[col][cc];
            }
        }
        const Point3 center{{m[0][3] / m[0][0], m[1][3] / m[1][1], m[2][3] / m[2][2]}};
        const double radius = distance(center, a);
        for (std::size_t p = 0; p < pts.size(); ++p) {
            if (std::find(t.begin(), t.end(), static_cast<std::int32_t>(p)) != t.end())
                continue;
            EXPECT_GE(distance(center, pts[p]), radius - 1e-8);
        }
    }
}

TEST(Delaunay3d, GraphIsConnectedAndValid) {
    const auto mesh = delaunay3d(2000, 29);
    EXPECT_NO_THROW(mesh.graph.validate());
    EXPECT_EQ(graph::connectedComponents(mesh.graph).count, 1);
    const double meanDegree =
        2.0 * static_cast<double>(mesh.numEdges()) / static_cast<double>(mesh.numVertices());
    // Random 3D Delaunay has mean degree ~15.5.
    EXPECT_GT(meanDegree, 12.0);
    EXPECT_LT(meanDegree, 18.0);
}

TEST(Delaunay3d, MinimalTetrahedron) {
    std::vector<Point3> pts{{{0.0, 0.0, 0.0}},
                            {{1.0, 0.0, 0.0}},
                            {{0.0, 1.0, 0.0}},
                            {{0.0, 0.0, 1.0}}};
    const auto tets = delaunayTets3d(pts);
    ASSERT_EQ(tets.size(), 1u);
    const auto g = delaunayTriangulate3d(pts);
    EXPECT_EQ(g.numEdges(), 6);
}

// --- Synthetic mesh families ---

TEST(RefinedTriMesh, IsConnectedAndGraded) {
    const auto mesh = refinedTriMesh(4000, 2, 31);
    EXPECT_EQ(static_cast<std::int64_t>(mesh.points.size()), 4000);
    EXPECT_EQ(graph::connectedComponents(mesh.graph).count, 1);
    EXPECT_NO_THROW(mesh.graph.validate());
}

TEST(BubbleMesh, GeneratesRequestedSize) {
    const auto mesh = bubbleMesh(3000, 3, 37);
    EXPECT_EQ(mesh.numVertices(), 3000);
    EXPECT_EQ(graph::connectedComponents(mesh.graph).count, 1);
}

TEST(FemMesh2d, BodyHoleIsEmpty) {
    const auto mesh = femMesh2d(3000, 41);
    // No point inside the elliptic body.
    for (const auto& p : mesh.points) {
        const double dx = (p[0] - 0.35) / 0.18;
        const double dy = (p[1] - 0.5) / 0.045;
        EXPECT_GE(dx * dx + dy * dy, 1.0);
    }
    EXPECT_EQ(graph::connectedComponents(mesh.graph).count, 1);
}

TEST(Climate25d, WeightsAreLevelCounts) {
    const auto mesh = climate25d(3000, 40, 43);
    ASSERT_EQ(mesh.weights.size(), mesh.points.size());
    EXPECT_EQ(mesh.meshClass, MeshClass::Dim25);
    double minW = 1e9, maxW = -1e9;
    for (const double w : mesh.weights) {
        EXPECT_GE(w, 1.0);
        EXPECT_LE(w, 40.0);
        EXPECT_DOUBLE_EQ(w, std::floor(w));
        minW = std::min(minW, w);
        maxW = std::max(maxW, w);
    }
    EXPECT_LT(minW, maxW);  // real variation (both shallow and deep cells)
    EXPECT_EQ(graph::connectedComponents(mesh.graph).count, 1);
}

TEST(Alya3d, TubeMeshIsConnectedIsh) {
    const auto mesh = alya3d(4000, 5, 47);
    EXPECT_EQ(mesh.numVertices(), 4000);
    EXPECT_NO_THROW(mesh.graph.validate());
    // The dominant component must cover nearly all vertices (thin branch
    // tips may detach).
    const auto comps = graph::connectedComponents(mesh.graph);
    std::vector<std::int64_t> sizes(static_cast<std::size_t>(comps.count), 0);
    for (const auto c : comps.id) sizes[static_cast<std::size_t>(c)]++;
    EXPECT_GE(*std::max_element(sizes.begin(), sizes.end()), 3600);
    // No isolated vertices (repair pass).
    for (graph::Vertex v = 0; v < mesh.graph.numVertices(); ++v)
        EXPECT_GT(mesh.graph.degree(v), 0);
}

TEST(Alya3d, IsAnisotropic) {
    // Tube meshes are elongated: bounding box extents differ measurably
    // from a cube-filling cloud.
    const auto mesh = alya3d(2000, 6, 53);
    const auto bb = Box3::around(mesh.points);
    const auto ext = bb.extent();
    const double maxExt = std::max({ext[0], ext[1], ext[2]});
    const double volume = ext[0] * ext[1] * ext[2];
    // Points occupy far less than the bounding volume (tubes are thin).
    double meanNearest = 0.0;
    (void)meanNearest;
    EXPECT_LT(static_cast<double>(mesh.numVertices()), 1e9 * volume);
    EXPECT_GT(maxExt, 0.2);
}

TEST(Registry, CatalogsAreNonEmptyAndProduceMeshes) {
    for (const auto& spec : catalog2d()) {
        const auto mesh = spec.make(800, 61);
        EXPECT_GE(mesh.numVertices(), 800) << spec.name;
        EXPECT_GT(mesh.numEdges(), 0) << spec.name;
        EXPECT_EQ(mesh.meshClass, spec.meshClass) << spec.name;
    }
    for (const auto& spec : catalog3d()) {
        const auto mesh = spec.make(800, 61);
        EXPECT_GE(mesh.numVertices(), 800) << spec.name;
        EXPECT_GT(mesh.numEdges(), 0) << spec.name;
    }
}

TEST(Registry, WeightedFamiliesDeclareWeights) {
    for (const auto& spec : catalog2d()) {
        const auto mesh = spec.make(500, 67);
        if (spec.meshClass == MeshClass::Dim25) {
            EXPECT_EQ(mesh.weights.size(), mesh.points.size()) << spec.name;
        }
    }
}

}  // namespace
