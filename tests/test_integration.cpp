// End-to-end integration tests: the full pipeline a user runs —
// generate mesh -> partition -> evaluate -> SpMV -> export/import —
// including the paper's headline quality relations.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "baseline/tools.hpp"
#include "core/geographer.hpp"
#include "gen/climate.hpp"
#include "gen/delaunay2d.hpp"
#include "gen/meshes2d.hpp"
#include "gen/registry.hpp"
#include "graph/metrics.hpp"
#include "io/metis.hpp"
#include "io/svg.hpp"
#include "io/vtk.hpp"
#include "spmv/spmv.hpp"

namespace {

namespace fs = std::filesystem;
using namespace geo;

class Pipeline : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = fs::temp_directory_path() / "geo_integration";
        fs::create_directories(dir_);
    }
    void TearDown() override { fs::remove_all(dir_); }
    std::string path(const std::string& n) const { return (dir_ / n).string(); }
    fs::path dir_;
};

TEST_F(Pipeline, GenerateParticipateEvaluateExportReimport) {
    const auto mesh = gen::refinedTriMesh(5000, 2, 1);
    core::Settings s;
    const auto res = core::partitionGeographer<2>(mesh.points, {}, 8, 4, s);
    const auto before = graph::evaluatePartition(mesh.graph, res.partition, 8);

    // Export everything, read it back, metrics must be identical.
    io::writeMetis(path("mesh.metis"), mesh.graph);
    io::writePartition(path("mesh.part"), res.partition);
    io::writeCoordinates(path("mesh.xy"), mesh.points);
    const auto metis = io::readMetis(path("mesh.metis"));
    const auto part = io::readPartition(path("mesh.part"));
    const auto coords = io::readCoordinates(path("mesh.xy"));
    const auto after = graph::evaluatePartition(metis.graph, part, 8);
    EXPECT_EQ(before.edgeCut, after.edgeCut);
    EXPECT_EQ(before.totalCommVolume, after.totalCommVolume);
    EXPECT_EQ(before.maxCommVolume, after.maxCommVolume);
    EXPECT_EQ(coords.size(), mesh.points.size());

    // Renderers accept the pipeline output.
    EXPECT_NO_THROW(io::writeSvgPartition(path("mesh.svg"), mesh.points, part, 8));
    EXPECT_NO_THROW(io::writeVtk<2>(path("mesh.vtk"), mesh.points, mesh.graph, part));
    EXPECT_GT(fs::file_size(path("mesh.svg")), 1000u);
    EXPECT_GT(fs::file_size(path("mesh.vtk")), 1000u);
}

TEST_F(Pipeline, HeadlineGeographerLeadsTotalCommVolumeOn2D) {
    // Fig. 2a: Geographer's total communication volume beats every
    // competitor on 2D DIMACS-style meshes (geometric mean over families;
    // individual instances may flip, the aggregate must not).
    double logRatioSum[4] = {0, 0, 0, 0};
    int count = 0;
    for (const auto& spec : gen::catalog2d()) {
        if (spec.meshClass != gen::MeshClass::Dim2) continue;
        const auto mesh = spec.make(6000, 3);
        const auto& tools = baseline::tools2();
        const auto geoRes = tools[0].run(mesh.points, {}, 8, 0.03, 1, 1);
        const auto geoVol = graph::evaluatePartition(mesh.graph, geoRes.partition, 8, {}, false)
                                .totalCommVolume;
        ASSERT_GT(geoVol, 0);
        for (std::size_t t = 1; t < tools.size(); ++t) {
            const auto res = tools[t].run(mesh.points, {}, 8, 0.03, 1, 1);
            const auto vol =
                graph::evaluatePartition(mesh.graph, res.partition, 8, {}, false)
                    .totalCommVolume;
            logRatioSum[t - 1] +=
                std::log(static_cast<double>(vol) / static_cast<double>(geoVol));
        }
        ++count;
    }
    ASSERT_GT(count, 0);
    for (int t = 0; t < 4; ++t) {
        const double geomean = std::exp(logRatioSum[t] / count);
        EXPECT_GT(geomean, 1.0) << baseline::tools2()[static_cast<std::size_t>(t + 1)].name
                                << " should trail geoKmeans on 2D totCommVol";
    }
}

TEST_F(Pipeline, WeightedClimatePipeline) {
    // 2.5D: weighted partition -> SpMV; weighted imbalance within eps while
    // the SpMV plan stays consistent.
    const auto mesh = gen::climate25d(6000, 30, 5);
    core::Settings s;
    s.epsilon = 0.05;
    const auto res =
        core::partitionGeographer<2>(mesh.points, mesh.weights, 6, 3, s);
    EXPECT_LE(graph::imbalance(res.partition, 6, mesh.weights), 0.05 + 1e-9);
    const auto t = spmv::runSpmv(mesh.graph, res.partition, 6, 10);
    EXPECT_GT(t.totalGhosts, 0);
    EXPECT_GT(t.modeledCommSecondsPerIteration, 0.0);
}

TEST_F(Pipeline, SpmvCommTimeTracksCommVolumeAcrossTools) {
    // The modeled SpMV comm time must be monotone in max ghost volume
    // across tools on the same mesh (paper: timeComm correlates with the
    // comm volume metrics, if noisily).
    const auto mesh = gen::delaunay2d(8000, 9);
    struct Obs {
        std::int64_t ghosts;
        std::int32_t neighbors;
        double time;
    };
    std::vector<Obs> observations;
    for (const auto& tool : baseline::tools2()) {
        const auto res = tool.run(mesh.points, {}, 8, 0.03, 1, 1);
        const auto t = spmv::runSpmv(mesh.graph, res.partition, 8, 5);
        observations.push_back(
            Obs{t.maxGhosts, t.maxNeighbors, t.modeledCommSecondsPerIteration});
    }
    // Modeled time = alpha * neighbors + beta * ghosts: monotone whenever
    // BOTH components are dominated.
    for (const auto& a : observations)
        for (const auto& b : observations)
            if (a.ghosts <= b.ghosts && a.neighbors <= b.neighbors)
                EXPECT_LE(a.time, b.time + 1e-9);
}

TEST_F(Pipeline, RanksAndBlocksFullyIndependent) {
    // k != p in all combinations still produces valid balanced partitions.
    const auto mesh = gen::delaunay2d(3000, 11);
    core::Settings s;
    for (const int ranks : {1, 3, 6}) {
        for (const std::int32_t k : {2, 7, 24}) {
            const auto res = core::partitionGeographer<2>(mesh.points, {}, k, ranks, s);
            EXPECT_LE(graph::imbalance(res.partition, k), s.epsilon + 1e-9)
                << "ranks=" << ranks << " k=" << k;
        }
    }
}

TEST_F(Pipeline, MortonCurveVariantWorks) {
    const auto mesh = gen::delaunay2d(3000, 13);
    core::Settings s;
    s.curve = core::Curve::Morton;
    const auto res = core::partitionGeographer<2>(mesh.points, {}, 6, 2, s);
    EXPECT_LE(graph::imbalance(res.partition, 6), s.epsilon + 1e-9);
}

}  // namespace
