#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "gen/climate.hpp"
#include "gen/delaunay2d.hpp"
#include "gen/grid.hpp"
#include "graph/metrics.hpp"
#include "hier/hier_partition.hpp"
#include "hier/topology.hpp"
#include "support/rng.hpp"

namespace {

using geo::Point2;
using geo::Xoshiro256;
using geo::core::Settings;
using geo::hier::HierState;
using geo::hier::partitionHierarchical;
using geo::hier::repartitionHierarchical;
using geo::hier::Topology;
using geo::hier::TopologyLevel;

Topology twoLevel(std::int32_t islands, std::int32_t perIsland,
                  double crossFactor = 2.5) {
    Topology topo;
    topo.levels.push_back(TopologyLevel{islands, {}, crossFactor});
    topo.levels.push_back(TopologyLevel{perIsland, {}, 1.0});
    return topo;
}

TEST(Topology, LeafCountAndCapacities) {
    const auto topo = twoLevel(3, 4);
    EXPECT_EQ(topo.leafCount(), 12);
    const auto caps = topo.leafCapacities();
    ASSERT_EQ(caps.size(), 12u);
    for (const double c : caps) EXPECT_NEAR(c, 1.0 / 12.0, 1e-12);

    Topology hetero;
    hetero.levels.push_back(TopologyLevel{2, {3.0, 1.0}, 2.5});
    hetero.levels.push_back(TopologyLevel{2, {1.0, 1.0}, 1.0});
    const auto hc = hetero.leafCapacities();
    ASSERT_EQ(hc.size(), 4u);
    EXPECT_NEAR(hc[0], 0.375, 1e-12);  // 0.75 island share, halved
    EXPECT_NEAR(hc[1], 0.375, 1e-12);
    EXPECT_NEAR(hc[2], 0.125, 1e-12);
    EXPECT_NEAR(hc[3], 0.125, 1e-12);
    EXPECT_NEAR(std::accumulate(hc.begin(), hc.end(), 0.0), 1.0, 1e-12);
}

TEST(Topology, PathsDivergenceAndLinkCost) {
    const auto topo = twoLevel(2, 3, 2.5);
    // Leaves 0..2 in island 0, 3..5 in island 1 (depth-first order).
    EXPECT_EQ(topo.leafPath(4), (std::vector<std::int32_t>{1, 1}));
    EXPECT_EQ(topo.divergenceLevel(0, 1), 1);   // same island, different leaf
    EXPECT_EQ(topo.divergenceLevel(0, 3), 0);   // different islands
    EXPECT_EQ(topo.divergenceLevel(2, 2), 2);   // no divergence
    EXPECT_DOUBLE_EQ(topo.linkCost(0, 1), 1.0);
    EXPECT_DOUBLE_EQ(topo.linkCost(0, 3), 2.5);
    EXPECT_DOUBLE_EQ(topo.linkCost(2, 2), 0.0);
    const auto matrix = topo.blockCostMatrix();
    ASSERT_EQ(matrix.size(), 36u);
    EXPECT_DOUBLE_EQ(matrix[0 * 6 + 5], 2.5);
    EXPECT_DOUBLE_EQ(matrix[4 * 6 + 3], 1.0);
}

TEST(Topology, FromBranchingUsesCostModelPenalty) {
    const std::vector<std::int32_t> branchings{4, 2};
    geo::par::CostModel model;
    model.crossIslandFactor = 3.0;
    const auto topo = Topology::fromBranching(branchings, model);
    EXPECT_EQ(topo.leafCount(), 8);
    EXPECT_DOUBLE_EQ(topo.levels[0].crossFactor, 3.0);
    EXPECT_DOUBLE_EQ(topo.levels[1].crossFactor, 1.0);
}

TEST(Topology, ValidationRejectsMalformedLevels) {
    Topology empty;
    EXPECT_THROW(empty.validate(), std::invalid_argument);

    Topology badBranching;
    badBranching.levels.push_back(TopologyLevel{0, {}, 1.0});
    EXPECT_THROW(badBranching.validate(), std::invalid_argument);

    Topology wrongArity;
    wrongArity.levels.push_back(TopologyLevel{3, {1.0, 2.0}, 1.0});
    EXPECT_THROW(wrongArity.validate(), std::invalid_argument);

    Topology negativeCapacity;
    negativeCapacity.levels.push_back(TopologyLevel{2, {1.0, -1.0}, 1.0});
    EXPECT_THROW(negativeCapacity.validate(), std::invalid_argument);

    Topology badFactor;
    badFactor.levels.push_back(TopologyLevel{2, {}, 0.0});
    EXPECT_THROW(badFactor.validate(), std::invalid_argument);
}

std::vector<Point2> uniformCloud(int n, std::uint64_t seed) {
    Xoshiro256 rng(seed);
    std::vector<Point2> pts;
    pts.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) pts.push_back(Point2{{rng.uniform(), rng.uniform()}});
    return pts;
}

TEST(HierPartition, CoversAllPointsWithinBalance) {
    const auto pts = uniformCloud(6000, 3);
    const auto topo = twoLevel(2, 4);
    Settings s;
    s.epsilon = 0.05;
    const auto res = partitionHierarchical<2>(pts, {}, topo, 4, s);
    ASSERT_EQ(res.partition.size(), pts.size());
    ASSERT_EQ(res.blockLeaf.size(), 8u);
    for (std::int32_t b = 0; b < 8; ++b) EXPECT_EQ(res.blockLeaf[static_cast<std::size_t>(b)], b);
    std::vector<std::int64_t> counts(8, 0);
    for (const auto b : res.partition) {
        ASSERT_GE(b, 0);
        ASSERT_LT(b, 8);
        counts[static_cast<std::size_t>(b)]++;
    }
    for (const auto c : counts) EXPECT_GT(c, 0);
    // The recursion splits epsilon across levels ((1+eps)^(1/depth) - 1
    // per level), so the end-to-end imbalance honors the user's epsilon;
    // small slack for levels that stop on maxBalanceIterations.
    EXPECT_LE(res.imbalance, s.epsilon + 0.01);
    EXPECT_EQ(res.coldNodes, 3);  // root + 2 islands, all cold on first run
    EXPECT_EQ(res.warmNodes, 0);
}

TEST(HierPartition, HonorsHeterogeneousIslandCapacities) {
    const auto pts = uniformCloud(6000, 5);
    Topology topo;
    topo.levels.push_back(TopologyLevel{2, {3.0, 1.0}, 2.5});
    topo.levels.push_back(TopologyLevel{2, {}, 1.0});
    Settings s;
    s.epsilon = 0.05;
    s.maxIterations = 80;
    const auto res = partitionHierarchical<2>(pts, {}, topo, 2, s);
    std::vector<double> share(4, 0.0);
    for (const auto b : res.partition) share[static_cast<std::size_t>(b)] += 1.0 / 6000.0;
    EXPECT_NEAR(share[0], 0.375, 0.04);
    EXPECT_NEAR(share[1], 0.375, 0.04);
    EXPECT_NEAR(share[2], 0.125, 0.03);
    EXPECT_NEAR(share[3], 0.125, 0.03);
    // The imbalance field already uses the capacity-aware metric.
    EXPECT_LE(res.imbalance, s.epsilon + 0.01);
}

TEST(HierPartition, DeterministicAcrossRuns) {
    const auto pts = uniformCloud(3000, 7);
    const auto topo = twoLevel(2, 2);
    Settings s;
    s.epsilon = 0.05;
    const auto a = partitionHierarchical<2>(pts, {}, topo, 3, s);
    const auto b = partitionHierarchical<2>(pts, {}, topo, 3, s);
    EXPECT_EQ(a.partition, b.partition);
}

TEST(HierPartition, RejectsConflictingSettings) {
    const auto pts = uniformCloud(200, 9);
    const auto topo = twoLevel(2, 2);
    Settings withFractions;
    withFractions.targetFractions = {0.25, 0.25, 0.25, 0.25};
    EXPECT_THROW((void)partitionHierarchical<2>(pts, {}, topo, 1, withFractions),
                 std::invalid_argument);
    Settings withInfluence;
    withInfluence.initialInfluence = {1.0, 1.0, 1.0, 1.0};
    EXPECT_THROW((void)partitionHierarchical<2>(pts, {}, topo, 1, withInfluence),
                 std::invalid_argument);
}

TEST(HierPartition, ReducesTopologyCommCostVsFlatOnTwoFamilies) {
    // The tentpole claim: under a 2-level topology with expensive island
    // crossings, the hierarchical partition beats the topology-oblivious
    // flat k run (same epsilon, identity block -> leaf mapping) on
    // topology-weighted comm cost. Flat-with-identity is a strong baseline
    // on uniform square domains — Hilbert-curve seeding makes consecutive
    // block ids spatially coherent, and curve quarters of a square ARE
    // quadrants — so the 4-aligned 2-level case roughly ties; at 8 islands
    // and on irregular-density instances the hierarchy wins. Assert wins on
    // at least two of the three generator families (all three win as of
    // this writing; everything here is deterministic).
    const auto topo = twoLevel(8, 8, 2.5);
    const std::int32_t k = topo.leafCount();
    const auto cost = topo.blockCostMatrix();
    Settings s;
    s.epsilon = 0.05;
    const auto gridMesh = geo::gen::grid2d(96, 96);
    const auto delaunayMesh = geo::gen::delaunay2d(8000, 13);
    const auto climateMesh = geo::gen::climate25d(8000, 3, 1);
    int wins = 0;
    for (const auto* mesh : {&gridMesh, &delaunayMesh, &climateMesh}) {
        const auto hier =
            partitionHierarchical<2>(mesh->points, mesh->weights, topo, 4, s);
        const auto flat = geo::core::partitionGeographer<2>(mesh->points,
                                                            mesh->weights, k, 4, s);
        const double hierCost =
            geo::graph::topologyCommCost(mesh->graph, hier.partition, k, cost);
        const double flatCost =
            geo::graph::topologyCommCost(mesh->graph, flat.partition, k, cost);
        EXPECT_GT(hierCost, 0.0);
        wins += (hierCost < flatCost);
    }
    EXPECT_GE(wins, 2);
}

TEST(HierRepartition, WarmStartsEveryNodeOnSecondStep) {
    const auto pts = uniformCloud(5000, 11);
    const auto topo = twoLevel(2, 3);
    Settings s;
    s.epsilon = 0.05;
    HierState<2> state;
    const auto first = repartitionHierarchical<2>(pts, {}, topo, 2, s, state);
    EXPECT_EQ(first.coldNodes, 3);
    EXPECT_EQ(first.warmNodes, 0);
    ASSERT_EQ(state.nodes.size(), 3u);  // root + 2 islands
    for (const auto& node : state.nodes) EXPECT_FALSE(node.centers.empty());

    // Same cloud again: zero drift, every node resumes warm.
    const auto second = repartitionHierarchical<2>(pts, {}, topo, 2, s, state);
    EXPECT_EQ(second.warmNodes, 3);
    EXPECT_EQ(second.coldNodes, 0);
    EXPECT_LE(second.imbalance, s.epsilon + 0.01);
}

TEST(HierRepartition, DriftingCloudStaysBalancedAcrossSteps) {
    auto pts = uniformCloud(4000, 17);
    const auto topo = twoLevel(2, 2);
    Settings s;
    s.epsilon = 0.05;
    HierState<2> state;
    for (int t = 0; t < 4; ++t) {
        const auto res = repartitionHierarchical<2>(pts, {}, topo, 2, s, state);
        EXPECT_LE(res.imbalance, s.epsilon + 0.01) << "step " << t;
        if (t > 0) EXPECT_GT(res.warmNodes, 0) << "step " << t;
        for (auto& p : pts) p = Point2{{p[0] + 0.01, p[1]}};  // gentle advection
    }
}

TEST(HierRepartition, StateMismatchedWithTopologyIsRejected) {
    const auto pts = uniformCloud(500, 19);
    const auto topo = twoLevel(2, 2);
    HierState<2> state;
    state.nodes.resize(7);  // wrong internal-node count for this topology
    Settings s;
    EXPECT_THROW((void)repartitionHierarchical<2>(pts, {}, topo, 1, s, state),
                 std::invalid_argument);
}

TEST(HierMetrics, TopologySpmvTimeWeighsIslandCrossings) {
    // Hand-built: an 8-column strip split into 4 slabs, blocks 0|1 on
    // island 0 and 2|3 on island 1; the 1|2 boundary crosses islands.
    const auto mesh = geo::gen::grid2d(8, 4);
    geo::graph::Partition part(32);
    for (std::size_t v = 0; v < 32; ++v) part[v] = static_cast<std::int32_t>((v % 8) / 2);
    const auto cheap = twoLevel(2, 2, 1.0);
    const auto pricey = twoLevel(2, 2, 4.0);
    const double base = geo::hier::topologySpmvCommSeconds(mesh.graph, part, cheap);
    const double weighted = geo::hier::topologySpmvCommSeconds(mesh.graph, part, pricey);
    EXPECT_GT(base, 0.0);
    // Blocks 1 and 2 receive one intra-island and one cross-island ghost
    // column (4 ghosts each); raising the island factor from 1 to 4 scales
    // their byte term accordingly, so the max strictly grows.
    EXPECT_GT(weighted, base);
}

}  // namespace
