#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "baseline/hsfc.hpp"
#include "baseline/multijagged.hpp"
#include "baseline/rcb.hpp"
#include "baseline/rcb_dist.hpp"
#include "baseline/rib.hpp"
#include "baseline/tools.hpp"
#include "gen/delaunay2d.hpp"
#include "gen/delaunay3d.hpp"
#include "gen/grid.hpp"
#include "geometry/box.hpp"
#include "graph/metrics.hpp"
#include "sfc/hilbert.hpp"
#include "support/rng.hpp"

namespace {

using namespace geo;
using namespace geo::baseline;

std::vector<Point2> uniformPoints(int n, std::uint64_t seed) {
    Xoshiro256 rng(seed);
    std::vector<Point2> pts;
    for (int i = 0; i < n; ++i) pts.push_back(Point2{{rng.uniform(), rng.uniform()}});
    return pts;
}

void expectValidBalancedPartition(const graph::Partition& part, std::int32_t k,
                                  std::span<const double> weights = {},
                                  double tolerance = 0.05) {
    std::set<std::int32_t> used(part.begin(), part.end());
    EXPECT_EQ(used.size(), static_cast<std::size_t>(k)) << "all blocks non-empty";
    EXPECT_GE(*used.begin(), 0);
    EXPECT_LT(*used.rbegin(), k);
    EXPECT_LE(graph::imbalance(part, k, weights), tolerance);
}

struct ToolCase {
    const char* name;
    graph::Partition (*run)(std::span<const Point2>, std::span<const double>, std::int32_t);
};

class BaselineSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};
INSTANTIATE_TEST_SUITE_P(Shapes, BaselineSweep,
                         ::testing::Combine(::testing::Values(2, 3, 7, 8, 16),
                                            ::testing::Values(500, 3000)));

TEST_P(BaselineSweep, RcbIsBalancedAndComplete) {
    const auto [k, n] = GetParam();
    const auto pts = uniformPoints(n, 3);
    expectValidBalancedPartition(rcb<2>(pts, {}, k), k);
}

TEST_P(BaselineSweep, RibIsBalancedAndComplete) {
    const auto [k, n] = GetParam();
    const auto pts = uniformPoints(n, 5);
    expectValidBalancedPartition(rib<2>(pts, {}, k), k);
}

TEST_P(BaselineSweep, MultiJaggedIsBalancedAndComplete) {
    const auto [k, n] = GetParam();
    const auto pts = uniformPoints(n, 7);
    expectValidBalancedPartition(multiJagged<2>(pts, {}, k), k, {}, 0.1);
}

TEST_P(BaselineSweep, HsfcIsBalancedAndComplete) {
    const auto [k, n] = GetParam();
    const auto pts = uniformPoints(n, 9);
    expectValidBalancedPartition(hsfc<2>(pts, {}, k), k);
}

TEST(Rcb, SplitsAlongWidestAxis) {
    // Points stretched along x: the k=2 cut must separate left from right.
    Xoshiro256 rng(11);
    std::vector<Point2> pts;
    for (int i = 0; i < 1000; ++i)
        pts.push_back(Point2{{rng.uniform(0.0, 10.0), rng.uniform(0.0, 1.0)}});
    const auto part = rcb<2>(pts, {}, 2);
    for (std::size_t i = 0; i < pts.size(); ++i)
        for (std::size_t j = 0; j < pts.size(); ++j)
            if (pts[i][0] < 4.0 && pts[j][0] > 6.0) EXPECT_NE(part[i], part[j]);
}

TEST(Rib, CutsOrthogonallyToDiagonalSpread) {
    // Points along the diagonal: RIB should separate the two diagonal ends,
    // which axis-aligned RCB does too here, but RIB must do it via the
    // inertial projection.
    Xoshiro256 rng(13);
    std::vector<Point2> pts;
    for (int i = 0; i < 2000; ++i) {
        const double t = rng.uniform(-1.0, 1.0);
        pts.push_back(Point2{{t + 0.05 * rng.uniform(), t - 0.05 * rng.uniform()}});
    }
    const auto part = rib<2>(pts, {}, 2);
    // Ends of the diagonal are in different blocks.
    std::size_t lowEnd = 0, highEnd = 0;
    for (std::size_t i = 0; i < pts.size(); ++i) {
        if (pts[i][0] + pts[i][1] < pts[lowEnd][0] + pts[lowEnd][1]) lowEnd = i;
        if (pts[i][0] + pts[i][1] > pts[highEnd][0] + pts[highEnd][1]) highEnd = i;
    }
    EXPECT_NE(part[lowEnd], part[highEnd]);
}

TEST(MultiJagged, ProducesJaggedRectangles) {
    // For k = a*b on a uniform square, MJ cuts into a columns of b cells:
    // block regions must be x-monotone (each block's x-range confined).
    const auto pts = uniformPoints(4000, 17);
    const auto part = multiJagged<2>(pts, {}, 9);
    expectValidBalancedPartition(part, 9, {}, 0.1);
}

TEST(Hsfc, BlocksAreContiguousOnCurve) {
    const auto pts = uniformPoints(1500, 19);
    const auto part = hsfc<2>(pts, {}, 5);
    // Along Hilbert order, block ids must be non-decreasing.
    const auto bb = Box2::around(std::span<const Point2>(pts));
    std::vector<std::pair<std::uint64_t, std::size_t>> order;
    for (std::size_t i = 0; i < pts.size(); ++i)
        order.emplace_back(sfc::hilbertIndex<2>(pts[i], bb), i);
    std::sort(order.begin(), order.end());
    for (std::size_t i = 1; i < order.size(); ++i)
        EXPECT_LE(part[order[i - 1].second], part[order[i].second]);
}

TEST(Baselines, RespectWeights) {
    Xoshiro256 rng(23);
    std::vector<Point2> pts;
    std::vector<double> w;
    for (int i = 0; i < 3000; ++i) {
        const Point2 p{{rng.uniform(), rng.uniform()}};
        pts.push_back(p);
        w.push_back(p[0] < 0.3 ? 8.0 : 1.0);
    }
    expectValidBalancedPartition(rcb<2>(pts, w, 4), 4, w, 0.06);
    expectValidBalancedPartition(rib<2>(pts, w, 4), 4, w, 0.06);
    expectValidBalancedPartition(hsfc<2>(pts, w, 4), 4, w, 0.06);
    expectValidBalancedPartition(multiJagged<2>(pts, w, 4), 4, w, 0.12);
}

TEST(Baselines, WorkIn3d) {
    Xoshiro256 rng(29);
    std::vector<Point3> pts;
    for (int i = 0; i < 3000; ++i)
        pts.push_back(Point3{{rng.uniform(), rng.uniform(), rng.uniform()}});
    for (int k : {2, 8, 13}) {
        expectValidBalancedPartition(rcb<3>(pts, {}, k), k);
        expectValidBalancedPartition(rib<3>(pts, {}, k), k);
        expectValidBalancedPartition(hsfc<3>(pts, {}, k), k);
        expectValidBalancedPartition(multiJagged<3>(pts, {}, k), k, {}, 0.15);
    }
}

TEST(Baselines, RejectBadArguments) {
    const auto pts = uniformPoints(10, 31);
    EXPECT_THROW((void)rcb<2>(pts, {}, 0), std::invalid_argument);
    EXPECT_THROW((void)rib<2>(pts, {}, 100), std::invalid_argument);
    const std::vector<double> wrongWeights(3, 1.0);
    EXPECT_THROW((void)hsfc<2>(pts, wrongWeights, 2), std::invalid_argument);
}

TEST(DistributedRcb, BalancedAndRankCountInvariant) {
    // The level-synchronous median search uses only global reductions, so
    // the produced partition must be identical for every rank count.
    const auto pts = uniformPoints(3000, 71);
    graph::Partition reference;
    for (const int ranks : {1, 2, 5}) {
        graph::Partition global(pts.size());
        geo::par::runSpmd(ranks, [&](geo::par::Comm& comm) {
            const auto n = static_cast<std::int64_t>(pts.size());
            const std::int64_t lo = n * comm.rank() / ranks;
            const std::int64_t hi = n * (comm.rank() + 1) / ranks;
            std::vector<Point2> local(pts.begin() + lo, pts.begin() + hi);
            const auto mine = rcbDistributed<2>(comm, local, {}, 8);
            const auto all = comm.allgatherv(std::span<const std::int32_t>(mine));
            if (comm.isRoot()) global.assign(all.begin(), all.end());
        });
        expectValidBalancedPartition(global, 8, {}, 0.06);
        if (reference.empty())
            reference = global;
        else
            EXPECT_EQ(global, reference) << ranks << " ranks";
    }
}

TEST(DistributedRcb, MatchesSerialRcbQuality) {
    // Same algorithm, different median mechanics: cut quality must agree
    // within a few percent on a mesh.
    const auto mesh = gen::delaunay2d(4000, 73);
    const auto serial = rcb<2>(mesh.points, {}, 8);
    graph::Partition distributed(mesh.points.size());
    geo::par::runSpmd(1, [&](geo::par::Comm& comm) {
        const auto mine = rcbDistributed<2>(comm, mesh.points, {}, 8);
        distributed.assign(mine.begin(), mine.end());
    });
    const auto cutSerial = graph::edgeCut(mesh.graph, serial);
    const auto cutDist = graph::edgeCut(mesh.graph, distributed);
    EXPECT_NEAR(static_cast<double>(cutDist), static_cast<double>(cutSerial),
                0.1 * static_cast<double>(cutSerial));
}

TEST(DistributedRcb, HandlesWeightsIn3d) {
    Xoshiro256 rng(79);
    std::vector<Point3> pts;
    std::vector<double> w;
    for (int i = 0; i < 2000; ++i) {
        pts.push_back(Point3{{rng.uniform(), rng.uniform(), rng.uniform()}});
        w.push_back(pts.back()[2] < 0.5 ? 4.0 : 1.0);
    }
    geo::par::runSpmd(3, [&](geo::par::Comm& comm) {
        const auto n = static_cast<std::int64_t>(pts.size());
        const std::int64_t lo = n * comm.rank() / 3, hi = n * (comm.rank() + 1) / 3;
        std::vector<Point3> local(pts.begin() + lo, pts.begin() + hi);
        std::vector<double> localW(w.begin() + lo, w.begin() + hi);
        const auto mine = rcbDistributed<3>(comm, local, localW, 6);
        const auto allAssign = comm.allgatherv(std::span<const std::int32_t>(mine));
        if (comm.isRoot()) {
            graph::Partition part(allAssign.begin(), allAssign.end());
            expectValidBalancedPartition(part, 6, w, 0.06);
        }
    });
}

TEST(Tools, RegistryRunsAllFiveTools) {
    const auto mesh = gen::delaunay2d(2000, 37);
    ASSERT_EQ(tools2().size(), 5u);
    EXPECT_EQ(tools2().front().name, "geoKmeans");
    for (const auto& tool : tools2()) {
        const auto res = tool.run(mesh.points, {}, 4, 0.05, 1, 1);
        EXPECT_EQ(res.partition.size(), mesh.points.size()) << tool.name;
        EXPECT_LE(graph::imbalance(res.partition, 4), 0.12) << tool.name;
        EXPECT_GE(res.seconds, 0.0);
    }
}

TEST(Tools, Registry3dRunsAllFiveTools) {
    const auto mesh = gen::delaunay3d(1200, 41);
    ASSERT_EQ(tools3().size(), 5u);
    for (const auto& tool : tools3()) {
        const auto res = tool.run(mesh.points, {}, 4, 0.05, 1, 1);
        EXPECT_EQ(res.partition.size(), mesh.points.size()) << tool.name;
        EXPECT_LE(graph::imbalance(res.partition, 4), 0.12) << tool.name;
    }
}

TEST(ScalingModel, RecursiveMethodsDegradeFasterThanMJ) {
    const par::CostModel m;
    const double serial = 10.0;
    const std::int64_t n = 100000000;
    // At high rank counts the bisection tools pay log(k) data migrations;
    // MJ pays only `dim`.
    const auto rcbEst = modeledScaling(ToolKind::Rcb, n, 8192, 8192, 2, serial, m);
    const auto mjEst = modeledScaling(ToolKind::MultiJagged, n, 8192, 8192, 2, serial, m);
    EXPECT_GT(rcbEst.commSeconds, mjEst.commSeconds * 2.0);
}

TEST(ScalingModel, ComputeShrinksWithRanks) {
    const par::CostModel m;
    const auto a = modeledScaling(ToolKind::Hsfc, 1000000, 64, 2, 2, 8.0, m);
    const auto b = modeledScaling(ToolKind::Hsfc, 1000000, 64, 64, 2, 8.0, m);
    EXPECT_GT(a.computeSeconds, b.computeSeconds * 16);
}

TEST(ScalingModel, SerialHasNoComm) {
    const par::CostModel m;
    const auto est = modeledScaling(ToolKind::Rcb, 1000, 4, 1, 2, 1.0, m);
    EXPECT_DOUBLE_EQ(est.commSeconds, 0.0);
    EXPECT_DOUBLE_EQ(est.computeSeconds, 1.0);
}

TEST(Quality, GeographerBeatsSfcOnTotalCommVolume) {
    // The paper's headline: Geographer yields lower total communication
    // volume than HSFC on 2D meshes.
    const auto mesh = gen::delaunay2d(6000, 43);
    const auto geoRes = tools2()[0].run(mesh.points, {}, 8, 0.05, 1, 1);
    const auto sfcPart = hsfc<2>(mesh.points, {}, 8);
    const auto mGeo = graph::evaluatePartition(mesh.graph, geoRes.partition, 8, {}, false);
    const auto mSfc = graph::evaluatePartition(mesh.graph, sfcPart, 8, {}, false);
    EXPECT_LT(mGeo.totalCommVolume, mSfc.totalCommVolume);
}

}  // namespace
