#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "gen/delaunay2d.hpp"
#include "gen/grid.hpp"
#include "io/metis.hpp"
#include "io/svg.hpp"

namespace {

namespace fs = std::filesystem;
using namespace geo;

class IoTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = fs::temp_directory_path() / "geo_io_test";
        fs::create_directories(dir_);
    }
    void TearDown() override { fs::remove_all(dir_); }

    std::string path(const std::string& name) const { return (dir_ / name).string(); }

    fs::path dir_;
};

TEST_F(IoTest, MetisRoundTripUnweighted) {
    const auto mesh = gen::grid2d(7, 5);
    io::writeMetis(path("g.metis"), mesh.graph);
    const auto back = io::readMetis(path("g.metis"));
    EXPECT_EQ(back.graph.numVertices(), mesh.graph.numVertices());
    EXPECT_EQ(back.graph.numEdges(), mesh.graph.numEdges());
    EXPECT_EQ(back.graph.offsets(), mesh.graph.offsets());
    EXPECT_EQ(back.graph.targets(), mesh.graph.targets());
    EXPECT_TRUE(back.vertexWeights.empty());
}

TEST_F(IoTest, MetisRoundTripWeighted) {
    const auto mesh = gen::grid2d(4, 4);
    std::vector<double> w(16);
    for (std::size_t i = 0; i < w.size(); ++i) w[i] = static_cast<double>(1 + i % 5);
    io::writeMetis(path("w.metis"), mesh.graph, w);
    const auto back = io::readMetis(path("w.metis"));
    EXPECT_EQ(back.vertexWeights, w);
    EXPECT_EQ(back.graph.targets(), mesh.graph.targets());
}

TEST_F(IoTest, MetisRejectsMalformedFiles) {
    {
        std::ofstream out(path("bad1.metis"));
        out << "not a header\n";
    }
    EXPECT_THROW((void)io::readMetis(path("bad1.metis")), std::runtime_error);
    {
        std::ofstream out(path("bad2.metis"));
        out << "2 1\n5\n1\n";  // neighbor out of range
    }
    EXPECT_THROW((void)io::readMetis(path("bad2.metis")), std::runtime_error);
    {
        std::ofstream out(path("bad3.metis"));
        out << "3 5\n2\n1\n\n";  // edge count mismatch
    }
    EXPECT_THROW((void)io::readMetis(path("bad3.metis")), std::runtime_error);
    EXPECT_THROW((void)io::readMetis(path("missing.metis")), std::runtime_error);
}

TEST_F(IoTest, MetisSkipsComments) {
    {
        std::ofstream out(path("c.metis"));
        out << "% a comment\n2 1\n% another\n2\n1\n";
    }
    const auto g = io::readMetis(path("c.metis"));
    EXPECT_EQ(g.graph.numVertices(), 2);
    EXPECT_EQ(g.graph.numEdges(), 1);
}

TEST_F(IoTest, PartitionRoundTrip) {
    const graph::Partition part{0, 3, 2, 2, 1, 0};
    io::writePartition(path("p.part"), part);
    EXPECT_EQ(io::readPartition(path("p.part")), part);
}

TEST_F(IoTest, CoordinatesRoundTrip) {
    const std::vector<Point2> pts{{{0.125, -3.5}}, {{1e-17, 42.0}}};
    io::writeCoordinates(path("c.xy"), pts);
    const auto back = io::readCoordinates(path("c.xy"));
    ASSERT_EQ(back.size(), pts.size());
    for (std::size_t i = 0; i < pts.size(); ++i) {
        EXPECT_DOUBLE_EQ(back[i][0], pts[i][0]);
        EXPECT_DOUBLE_EQ(back[i][1], pts[i][1]);
    }
}

TEST_F(IoTest, SvgContainsAllPointsAndPalette) {
    const auto mesh = gen::delaunay2d(100, 3);
    graph::Partition part(100);
    for (std::size_t i = 0; i < 100; ++i) part[i] = static_cast<std::int32_t>(i % 4);
    io::writeSvgPartition(path("p.svg"), mesh.points, part, 4, 400, "test");
    std::ifstream in(path("p.svg"));
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_NE(content.find("<svg"), std::string::npos);
    EXPECT_NE(content.find("<title>test</title>"), std::string::npos);
    // 100 circles.
    std::size_t circles = 0, pos = 0;
    while ((pos = content.find("<circle", pos)) != std::string::npos) {
        ++circles;
        pos += 7;
    }
    EXPECT_EQ(circles, 100u);
    EXPECT_NE(content.find("#e41a1c"), std::string::npos);
}

TEST_F(IoTest, SvgRejectsMismatchedSizes) {
    const std::vector<Point2> pts{{{0.0, 0.0}}};
    const graph::Partition part{0, 1};
    EXPECT_THROW(io::writeSvgPartition(path("x.svg"), pts, part, 2),
                 std::invalid_argument);
}

}  // namespace
