#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "geometry/box.hpp"
#include "sfc/hilbert.hpp"
#include "support/rng.hpp"

namespace {

using geo::Box2;
using geo::Box3;
using geo::Point2;
using geo::Point3;
namespace sfc = geo::sfc;

Box2 unitBox2() {
    Box2 b;
    b.lo = Point2{{0.0, 0.0}};
    b.hi = Point2{{1.0, 1.0}};
    return b;
}

Box3 unitBox3() {
    Box3 b;
    b.lo = Point3{{0.0, 0.0, 0.0}};
    b.hi = Point3{{1.0, 1.0, 1.0}};
    return b;
}

TEST(Hilbert2D, RoundTripThroughInverse) {
    const auto bb = unitBox2();
    geo::Xoshiro256 rng(42);
    for (int i = 0; i < 2000; ++i) {
        const Point2 p{{rng.uniform(), rng.uniform()}};
        const auto idx = sfc::hilbertIndex<2>(p, bb);
        const Point2 q = sfc::hilbertPoint<2>(idx, bb);
        // Cell size is 2^-31; inverse returns the cell center.
        EXPECT_NEAR(p[0], q[0], 1e-8);
        EXPECT_NEAR(p[1], q[1], 1e-8);
        EXPECT_EQ(sfc::hilbertIndex<2>(q, bb), idx);
    }
}

TEST(Hilbert3D, RoundTripThroughInverse) {
    const auto bb = unitBox3();
    geo::Xoshiro256 rng(43);
    for (int i = 0; i < 2000; ++i) {
        const Point3 p{{rng.uniform(), rng.uniform(), rng.uniform()}};
        const auto idx = sfc::hilbertIndex<3>(p, bb);
        const Point3 q = sfc::hilbertPoint<3>(idx, bb);
        EXPECT_NEAR(p[0], q[0], 2e-6);
        EXPECT_NEAR(p[1], q[1], 2e-6);
        EXPECT_NEAR(p[2], q[2], 2e-6);
        EXPECT_EQ(sfc::hilbertIndex<3>(q, bb), idx);
    }
}

TEST(Hilbert2D, ConsecutiveIndicesAreAdjacentCells) {
    // The defining Hilbert property: consecutive curve positions are
    // neighboring grid cells (Chebyshev distance in coordinates == 1 cell).
    const auto bb = unitBox2();
    const double cell = 1.0 / static_cast<double>(1ULL << sfc::kBitsPerDim<2>);
    geo::Xoshiro256 rng(44);
    for (int i = 0; i < 500; ++i) {
        const auto idx = static_cast<std::uint64_t>(rng.below(1ULL << 40));
        const Point2 a = sfc::hilbertPoint<2>(idx, bb);
        const Point2 b = sfc::hilbertPoint<2>(idx + 1, bb);
        const double manhattan =
            (std::abs(a[0] - b[0]) + std::abs(a[1] - b[1])) / cell;
        EXPECT_NEAR(manhattan, 1.0, 1e-6) << "index " << idx;
    }
}

TEST(Hilbert3D, ConsecutiveIndicesAreAdjacentCells) {
    const auto bb = unitBox3();
    const double cell = 1.0 / static_cast<double>(1ULL << sfc::kBitsPerDim<3>);
    geo::Xoshiro256 rng(45);
    for (int i = 0; i < 500; ++i) {
        const auto idx = static_cast<std::uint64_t>(rng.below(1ULL << 50));
        const Point3 a = sfc::hilbertPoint<3>(idx, bb);
        const Point3 b = sfc::hilbertPoint<3>(idx + 1, bb);
        const double manhattan =
            (std::abs(a[0] - b[0]) + std::abs(a[1] - b[1]) + std::abs(a[2] - b[2])) / cell;
        EXPECT_NEAR(manhattan, 1.0, 1e-5) << "index " << idx;
    }
}

TEST(Hilbert2D, DistinctCellsGetDistinctIndices) {
    const auto bb = unitBox2();
    std::set<std::uint64_t> seen;
    const int g = 32;
    for (int i = 0; i < g; ++i)
        for (int j = 0; j < g; ++j) {
            const Point2 p{{(i + 0.5) / g, (j + 0.5) / g}};
            seen.insert(sfc::hilbertIndex<2>(p, bb));
        }
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(g * g));
}

TEST(Hilbert2D, LocalityBeatsRandomOrder) {
    // Mean spatial distance between consecutive points in Hilbert order must
    // be far below the mean distance of a random order.
    geo::Xoshiro256 rng(46);
    std::vector<Point2> pts;
    for (int i = 0; i < 4000; ++i) pts.push_back(Point2{{rng.uniform(), rng.uniform()}});
    const auto bb = Box2::around(pts);
    std::vector<std::pair<std::uint64_t, int>> order;
    for (int i = 0; i < static_cast<int>(pts.size()); ++i)
        order.emplace_back(sfc::hilbertIndex<2>(pts[static_cast<std::size_t>(i)], bb), i);
    std::sort(order.begin(), order.end());
    double hilbertHops = 0.0, randomHops = 0.0;
    for (std::size_t i = 1; i < order.size(); ++i) {
        hilbertHops += geo::distance(pts[static_cast<std::size_t>(order[i - 1].second)],
                                     pts[static_cast<std::size_t>(order[i].second)]);
        randomHops += geo::distance(pts[i - 1], pts[i]);
    }
    EXPECT_LT(hilbertHops * 5.0, randomHops);
}

TEST(Hilbert2D, IndicesMonotoneAlongCurveSegments) {
    // hilbertPoint is the inverse of hilbertIndex, so sorting indices must
    // reproduce the original curve order.
    const auto bb = unitBox2();
    std::vector<std::uint64_t> idx;
    for (std::uint64_t i = 1000; i < 1100; ++i)
        idx.push_back(sfc::hilbertIndex<2>(sfc::hilbertPoint<2>(i << 20, bb), bb));
    EXPECT_TRUE(std::is_sorted(idx.begin(), idx.end()));
}

TEST(Hilbert, BoundaryPointsAreClampedNotRejected) {
    const auto bb = unitBox2();
    EXPECT_NO_THROW(sfc::hilbertIndex<2>(Point2{{1.0, 1.0}}, bb));
    EXPECT_NO_THROW(sfc::hilbertIndex<2>(Point2{{-0.5, 2.0}}, bb));
    // Clamped outside points map to corner cells.
    const auto low = sfc::hilbertIndex<2>(Point2{{-1.0, -1.0}}, bb);
    const auto inside = sfc::hilbertIndex<2>(Point2{{1e-12, 1e-12}}, bb);
    EXPECT_EQ(low, inside);
}

TEST(Hilbert, DegenerateBoxDoesNotCrash) {
    Box2 flat;
    flat.lo = Point2{{0.0, 3.0}};
    flat.hi = Point2{{1.0, 3.0}};  // zero extent in y
    EXPECT_NO_THROW(sfc::hilbertIndex<2>(Point2{{0.5, 3.0}}, flat));
}

TEST(Hilbert, InvalidBoxThrows) {
    const auto bad = Box2::empty();
    EXPECT_THROW(sfc::hilbertIndex<2>(Point2{{0.0, 0.0}}, bad), std::invalid_argument);
}

TEST(HilbertIndices, ComputesBoundsWhenInvalid) {
    std::vector<Point2> pts{{{0.0, 0.0}}, {{1.0, 1.0}}, {{0.25, 0.75}}};
    const auto idx = sfc::hilbertIndices<2>(pts, Box2::empty());
    EXPECT_EQ(idx.size(), pts.size());
}

TEST(HilbertIndices, UpperBoundaryClampsIntoLastCell2D) {
    // The exact upper corner must key into the LAST cell, not one past it —
    // a point just inside the last cell (cell width 2^-31) and the corner
    // itself must agree, through the batch API.
    const auto bb = unitBox2();
    const double inside = 1.0 - 1e-12;  // within the last 2^-31 cell
    const std::vector<Point2> pts{{{1.0, 1.0}}, {{inside, inside}}, {{1.0, inside}}};
    const auto idx = sfc::hilbertIndices<2>(pts, bb);
    EXPECT_EQ(idx[0], idx[1]);
    EXPECT_EQ(idx[0], sfc::hilbertIndex<2>(pts[2], bb));
    // Round-tripping the clamped corner stays inside the box.
    const Point2 q = sfc::hilbertPoint<2>(idx[0], bb);
    EXPECT_TRUE(bb.contains(q));
}

TEST(HilbertIndices, UpperBoundaryClampsIntoLastCell3D) {
    const auto bb = unitBox3();
    const double inside = 1.0 - 1e-8;  // within the last 2^-20 cell (~9.5e-7)
    const std::vector<Point3> pts{{{1.0, 1.0, 1.0}}, {{inside, inside, inside}}};
    const auto idx = sfc::hilbertIndices<3>(pts, bb);
    EXPECT_EQ(idx[0], idx[1]);
    const Point3 q = sfc::hilbertPoint<3>(idx[0], bb);
    EXPECT_TRUE(bb.contains(q));
    // Same clamp contract for the Morton batch keying.
    const auto midx = sfc::mortonIndices<3>(pts, bb);
    EXPECT_EQ(midx[0], midx[1]);
}

TEST(HilbertIndices, ReusesCallerBounds) {
    // A caller-provided valid box must be used as-is (no recomputation from
    // the points): keying against a wider box than the data's own bounds
    // must match per-point indices in that wider box.
    geo::Xoshiro256 rng(48);
    std::vector<Point2> pts;
    for (int i = 0; i < 200; ++i) pts.push_back(Point2{{rng.uniform(), rng.uniform()}});
    Box2 wide;
    wide.lo = Point2{{-1.0, -1.0}};
    wide.hi = Point2{{3.0, 3.0}};
    const auto idx = sfc::hilbertIndices<2>(pts, wide);
    for (std::size_t i = 0; i < pts.size(); ++i)
        ASSERT_EQ(idx[i], sfc::hilbertIndex<2>(pts[i], wide)) << i;
}

TEST(HilbertIndices, ThreadedKeyingMatchesSerial) {
    geo::Xoshiro256 rng(49);
    std::vector<Point2> pts;
    for (int i = 0; i < 20000; ++i) pts.push_back(Point2{{rng.uniform(), rng.uniform()}});
    // Valid box (keying only threaded) and invalid box (threaded bounds
    // pass too) — both must be independent of the thread count.
    for (const auto& bb : {Box2::around(std::span<const Point2>(pts)), Box2::empty()}) {
        const auto serial = sfc::hilbertIndices<2>(pts, bb, 1);
        for (const int threads : {2, 4, 8})
            EXPECT_EQ(sfc::hilbertIndices<2>(pts, bb, threads), serial);
        const auto serialMorton = sfc::mortonIndices<2>(pts, bb, 1);
        EXPECT_EQ(sfc::mortonIndices<2>(pts, bb, 4), serialMorton);
    }
    EXPECT_EQ(sfc::boundsOf<2>(pts, 4).lo, Box2::around(std::span<const Point2>(pts)).lo);
    EXPECT_EQ(sfc::boundsOf<2>(pts, 4).hi, Box2::around(std::span<const Point2>(pts)).hi);
}

TEST(Morton2D, PreservesGridDistinctness) {
    const auto bb = unitBox2();
    std::set<std::uint64_t> seen;
    const int g = 16;
    for (int i = 0; i < g; ++i)
        for (int j = 0; j < g; ++j)
            seen.insert(sfc::mortonIndex<2>(Point2{{(i + 0.5) / g, (j + 0.5) / g}}, bb));
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(g * g));
}

TEST(Morton2D, HilbertLocalityIsAtLeastAsGood) {
    // Aggregate hop length along the curve order: Hilbert should not be
    // worse than Morton (it is typically ~30% better).
    geo::Xoshiro256 rng(47);
    std::vector<Point2> pts;
    for (int i = 0; i < 4000; ++i) pts.push_back(Point2{{rng.uniform(), rng.uniform()}});
    const auto bb = Box2::around(pts);
    auto hopLength = [&](auto indexer) {
        std::vector<std::pair<std::uint64_t, int>> order;
        for (int i = 0; i < static_cast<int>(pts.size()); ++i)
            order.emplace_back(indexer(pts[static_cast<std::size_t>(i)]), i);
        std::sort(order.begin(), order.end());
        double total = 0.0;
        for (std::size_t i = 1; i < order.size(); ++i)
            total += geo::distance(pts[static_cast<std::size_t>(order[i - 1].second)],
                                   pts[static_cast<std::size_t>(order[i].second)]);
        return total;
    };
    const double h = hopLength([&](const Point2& p) { return sfc::hilbertIndex<2>(p, bb); });
    const double m = hopLength([&](const Point2& p) { return sfc::mortonIndex<2>(p, bb); });
    EXPECT_LE(h, m * 1.05);
}

}  // namespace
