#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <utility>
#include <vector>

#include "par/comm.hpp"
#include "par/sort.hpp"
#include "support/rng.hpp"

namespace {

using geo::par::Comm;
using geo::par::KeyedRecord;
using geo::par::runSpmd;

using Rec = KeyedRecord<std::uint64_t, int>;

/// Gather per-rank vectors into one global vector ordered by rank.
template <typename T>
std::vector<T> gatherAll(Comm& comm, const std::vector<T>& local) {
    return comm.allgatherv(std::span<const T>(local));
}

class SortParam : public ::testing::TestWithParam<std::tuple<int, int>> {};

INSTANTIATE_TEST_SUITE_P(Shapes, SortParam,
                         ::testing::Combine(::testing::Values(1, 2, 4, 7),
                                            ::testing::Values(0, 1, 100, 1777)));

TEST_P(SortParam, ProducesGloballySortedPermutation) {
    const auto [p, perRank] = GetParam();
    runSpmd(p, [&](Comm& comm) {
        geo::Xoshiro256 rng(900 + static_cast<std::uint64_t>(comm.rank()));
        std::vector<Rec> local;
        for (int i = 0; i < perRank; ++i)
            local.push_back(Rec{rng(), comm.rank() * perRank + i});

        // Record the global multiset of inputs.
        auto inputAll = gatherAll(comm, local);

        auto sorted = geo::par::sampleSort(comm, local);
        EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));

        auto outputAll = gatherAll(comm, sorted);
        EXPECT_TRUE(std::is_sorted(outputAll.begin(), outputAll.end()));

        // Same multiset: sort both and compare keys+values.
        auto keyval = [](const Rec& r) { return std::pair(r.key, r.value); };
        std::sort(inputAll.begin(), inputAll.end(),
                  [&](const Rec& a, const Rec& b) { return keyval(a) < keyval(b); });
        std::sort(outputAll.begin(), outputAll.end(),
                  [&](const Rec& a, const Rec& b) { return keyval(a) < keyval(b); });
        ASSERT_EQ(inputAll.size(), outputAll.size());
        for (std::size_t i = 0; i < inputAll.size(); ++i) {
            EXPECT_EQ(inputAll[i].key, outputAll[i].key);
            EXPECT_EQ(inputAll[i].value, outputAll[i].value);
        }
    });
}

TEST(SampleSort, HandlesSkewedInput) {
    // All heavy keys on one rank; sort must still balance reasonably.
    const int p = 4, perRank = 2000;
    runSpmd(p, [&](Comm& comm) {
        geo::Xoshiro256 rng(1000 + static_cast<std::uint64_t>(comm.rank()));
        std::vector<Rec> local;
        for (int i = 0; i < perRank; ++i) {
            // Rank 0 holds only small keys, others only large ones.
            const std::uint64_t key =
                comm.rank() == 0 ? rng.below(1000) : 1000000 + rng.below(1000000);
            local.push_back(Rec{key, i});
        }
        auto sorted = geo::par::sampleSort(comm, local);
        EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
        const auto total = comm.allreduceSum(static_cast<std::uint64_t>(sorted.size()));
        EXPECT_EQ(total, static_cast<std::uint64_t>(p * perRank));
        // No rank should hold everything (splitters must spread the data).
        EXPECT_LT(sorted.size(), static_cast<std::size_t>(p * perRank));
    });
}

TEST(SampleSort, AllEqualKeysDoNotCrash) {
    runSpmd(4, [&](Comm& comm) {
        std::vector<Rec> local(500, Rec{42, comm.rank()});
        auto sorted = geo::par::sampleSort(comm, local);
        const auto total = comm.allreduceSum(static_cast<std::uint64_t>(sorted.size()));
        EXPECT_EQ(total, 2000u);
        for (const auto& r : sorted) EXPECT_EQ(r.key, 42u);
    });
}

TEST(SampleSort, DuplicateHeavyKeysStaySpread) {
    // Regression for the degenerate-splitter skew: with heavily duplicated
    // keys, regular sampling used to produce equal splitters, and the
    // bucketing then sent every duplicate of a key — in the all-equal
    // extreme, the entire input — to one rank. Tie-breaking on
    // (key, origin rank, local index) lets splitters land *inside* a
    // duplicate run, so every rank keeps roughly its share.
    const int p = 4, perRank = 3000;
    runSpmd(p, [&](Comm& comm) {
        // All records share ONE key — the worst case.
        std::vector<Rec> local(perRank, Rec{7, comm.rank()});
        auto sorted = geo::par::sampleSort(comm, local);
        const auto total = comm.allreduceSum(static_cast<std::uint64_t>(sorted.size()));
        EXPECT_EQ(total, static_cast<std::uint64_t>(p * perRank));
        const double ideal = static_cast<double>(p * perRank) / p;
        EXPECT_LT(static_cast<double>(sorted.size()), 1.5 * ideal);
        EXPECT_GT(static_cast<double>(sorted.size()), 0.5 * ideal);

        // Few distinct keys, skewed multiplicities: still no starving rank.
        geo::Xoshiro256 rng(1200 + static_cast<std::uint64_t>(comm.rank()));
        std::vector<Rec> fewKeys;
        for (int i = 0; i < perRank; ++i) {
            const std::uint64_t key = rng.below(100) < 80 ? 5 : 5 + rng.below(3);
            fewKeys.push_back(Rec{key, comm.rank() * perRank + i});
        }
        auto spread = geo::par::sampleSort(comm, fewKeys);
        EXPECT_TRUE(std::is_sorted(spread.begin(), spread.end()));
        auto all = gatherAll(comm, spread);
        EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));
        EXPECT_LT(static_cast<double>(spread.size()), 1.75 * ideal);
        EXPECT_GT(spread.size(), 0u);
    });
}

TEST(SampleSort, ThreadedSortBitwiseMatchesSerial) {
    // The tagged comparator is a strict total order, so the sorted
    // permutation is unique — the per-rank output must be identical at any
    // thread count, values included.
    const int p = 2, perRank = 20000;
    std::array<std::vector<Rec>, p> serial, threaded;
    for (const int threads : {1, 3}) {
        runSpmd(p, [&](Comm& comm) {
            geo::Xoshiro256 rng(1300 + static_cast<std::uint64_t>(comm.rank()));
            std::vector<Rec> local;
            for (int i = 0; i < perRank; ++i)
                local.push_back(Rec{rng.below(500), comm.rank() * perRank + i});
            auto sorted = geo::par::sampleSort(comm, local, 16, threads);
            auto& out = threads == 1 ? serial : threaded;
            out[static_cast<std::size_t>(comm.rank())] = std::move(sorted);
        });
    }
    for (int r = 0; r < p; ++r) {
        const auto& a = serial[static_cast<std::size_t>(r)];
        const auto& b = threaded[static_cast<std::size_t>(r)];
        ASSERT_EQ(a.size(), b.size()) << "rank " << r;
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].key, b[i].key) << "rank " << r << " pos " << i;
            EXPECT_EQ(a[i].value, b[i].value) << "rank " << r << " pos " << i;
        }
    }
}

TEST(ParallelSort, UniqueOrderMatchesSerialSort) {
    // Direct unit test of the multiway mergesort: with a total order the
    // result equals std::sort bitwise at every thread count.
    using Item = std::pair<std::uint64_t, std::uint32_t>;
    geo::Xoshiro256 rng(1400);
    std::vector<Item> input;
    for (std::uint32_t i = 0; i < 60000; ++i)
        input.push_back({rng.below(1000), i});  // many duplicate keys, unique pairs
    auto expected = input;
    std::sort(expected.begin(), expected.end());
    for (const int threads : {1, 2, 5, 8}) {
        auto data = input;
        geo::par::parallelSort(threads, data);
        EXPECT_EQ(data, expected) << "threads " << threads;
    }
}

TEST(RebalanceSorted, EqualizesCounts) {
    const int p = 4;
    runSpmd(p, [&](Comm& comm) {
        // Wildly unequal sorted runs: rank r holds 100*(r+1)^2 records with
        // keys in its own disjoint range (already globally sorted).
        const int mine = 100 * (comm.rank() + 1) * (comm.rank() + 1);
        std::vector<Rec> local;
        for (int i = 0; i < mine; ++i)
            local.push_back(Rec{static_cast<std::uint64_t>(comm.rank()) * 1000000 +
                                    static_cast<std::uint64_t>(i),
                                comm.rank()});
        auto balanced = geo::par::rebalanceSorted(comm, local);
        const auto total = comm.allreduceSum(static_cast<std::uint64_t>(balanced.size()));
        const auto maxSize = comm.allreduceMax(static_cast<std::uint64_t>(balanced.size()));
        const auto minSize = comm.allreduceMin(static_cast<std::uint64_t>(balanced.size()));
        EXPECT_EQ(total, 100u * (1 + 4 + 9 + 16));
        EXPECT_LE(maxSize - minSize, 1u);
        // Global order is preserved.
        auto all = gatherAll(comm, balanced);
        EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));
    });
}

TEST(Redistribute, SendsToExplicitDestinations) {
    const int p = 3;
    runSpmd(p, [&](Comm& comm) {
        // Every rank sends value v to rank v%p.
        std::vector<int> values{0, 1, 2, 3, 4, 5};
        std::vector<int> dest;
        for (int v : values) dest.push_back(v % p);
        auto received = geo::par::redistribute(comm, std::span<const int>(values),
                                               std::span<const int>(dest));
        // Each rank receives, from each of p ranks, the two values congruent
        // to its rank mod p.
        EXPECT_EQ(received.size(), 2u * p);
        for (int v : received) EXPECT_EQ(v % p, comm.rank());
    });
}

TEST(Redistribute, RejectsInvalidRank) {
    runSpmd(2, [&](Comm& comm) {
        std::vector<int> values{1};
        std::vector<int> dest{5};
        EXPECT_THROW((void)geo::par::redistribute(comm, std::span<const int>(values),
                                                  std::span<const int>(dest)),
                     std::invalid_argument);
    });
}

}  // namespace
