#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <numeric>
#include <vector>

#include "par/comm.hpp"
#include "par/sort.hpp"
#include "support/rng.hpp"

namespace {

using geo::par::Comm;
using geo::par::KeyedRecord;
using geo::par::runSpmd;

using Rec = KeyedRecord<std::uint64_t, int>;

/// Gather per-rank vectors into one global vector ordered by rank.
template <typename T>
std::vector<T> gatherAll(Comm& comm, const std::vector<T>& local) {
    return comm.allgatherv(std::span<const T>(local));
}

class SortParam : public ::testing::TestWithParam<std::tuple<int, int>> {};

INSTANTIATE_TEST_SUITE_P(Shapes, SortParam,
                         ::testing::Combine(::testing::Values(1, 2, 4, 7),
                                            ::testing::Values(0, 1, 100, 1777)));

TEST_P(SortParam, ProducesGloballySortedPermutation) {
    const auto [p, perRank] = GetParam();
    runSpmd(p, [&](Comm& comm) {
        geo::Xoshiro256 rng(900 + static_cast<std::uint64_t>(comm.rank()));
        std::vector<Rec> local;
        for (int i = 0; i < perRank; ++i)
            local.push_back(Rec{rng(), comm.rank() * perRank + i});

        // Record the global multiset of inputs.
        auto inputAll = gatherAll(comm, local);

        auto sorted = geo::par::sampleSort(comm, local);
        EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));

        auto outputAll = gatherAll(comm, sorted);
        EXPECT_TRUE(std::is_sorted(outputAll.begin(), outputAll.end()));

        // Same multiset: sort both and compare keys+values.
        auto keyval = [](const Rec& r) { return std::pair(r.key, r.value); };
        std::sort(inputAll.begin(), inputAll.end(),
                  [&](const Rec& a, const Rec& b) { return keyval(a) < keyval(b); });
        std::sort(outputAll.begin(), outputAll.end(),
                  [&](const Rec& a, const Rec& b) { return keyval(a) < keyval(b); });
        ASSERT_EQ(inputAll.size(), outputAll.size());
        for (std::size_t i = 0; i < inputAll.size(); ++i) {
            EXPECT_EQ(inputAll[i].key, outputAll[i].key);
            EXPECT_EQ(inputAll[i].value, outputAll[i].value);
        }
    });
}

TEST(SampleSort, HandlesSkewedInput) {
    // All heavy keys on one rank; sort must still balance reasonably.
    const int p = 4, perRank = 2000;
    runSpmd(p, [&](Comm& comm) {
        geo::Xoshiro256 rng(1000 + static_cast<std::uint64_t>(comm.rank()));
        std::vector<Rec> local;
        for (int i = 0; i < perRank; ++i) {
            // Rank 0 holds only small keys, others only large ones.
            const std::uint64_t key =
                comm.rank() == 0 ? rng.below(1000) : 1000000 + rng.below(1000000);
            local.push_back(Rec{key, i});
        }
        auto sorted = geo::par::sampleSort(comm, local);
        EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
        const auto total = comm.allreduceSum(static_cast<std::uint64_t>(sorted.size()));
        EXPECT_EQ(total, static_cast<std::uint64_t>(p * perRank));
        // No rank should hold everything (splitters must spread the data).
        EXPECT_LT(sorted.size(), static_cast<std::size_t>(p * perRank));
    });
}

TEST(SampleSort, AllEqualKeysDoNotCrash) {
    runSpmd(4, [&](Comm& comm) {
        std::vector<Rec> local(500, Rec{42, comm.rank()});
        auto sorted = geo::par::sampleSort(comm, local);
        const auto total = comm.allreduceSum(static_cast<std::uint64_t>(sorted.size()));
        EXPECT_EQ(total, 2000u);
        for (const auto& r : sorted) EXPECT_EQ(r.key, 42u);
    });
}

TEST(RebalanceSorted, EqualizesCounts) {
    const int p = 4;
    runSpmd(p, [&](Comm& comm) {
        // Wildly unequal sorted runs: rank r holds 100*(r+1)^2 records with
        // keys in its own disjoint range (already globally sorted).
        const int mine = 100 * (comm.rank() + 1) * (comm.rank() + 1);
        std::vector<Rec> local;
        for (int i = 0; i < mine; ++i)
            local.push_back(Rec{static_cast<std::uint64_t>(comm.rank()) * 1000000 +
                                    static_cast<std::uint64_t>(i),
                                comm.rank()});
        auto balanced = geo::par::rebalanceSorted(comm, local);
        const auto total = comm.allreduceSum(static_cast<std::uint64_t>(balanced.size()));
        const auto maxSize = comm.allreduceMax(static_cast<std::uint64_t>(balanced.size()));
        const auto minSize = comm.allreduceMin(static_cast<std::uint64_t>(balanced.size()));
        EXPECT_EQ(total, 100u * (1 + 4 + 9 + 16));
        EXPECT_LE(maxSize - minSize, 1u);
        // Global order is preserved.
        auto all = gatherAll(comm, balanced);
        EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));
    });
}

TEST(Redistribute, SendsToExplicitDestinations) {
    const int p = 3;
    runSpmd(p, [&](Comm& comm) {
        // Every rank sends value v to rank v%p.
        std::vector<int> values{0, 1, 2, 3, 4, 5};
        std::vector<int> dest;
        for (int v : values) dest.push_back(v % p);
        auto received = geo::par::redistribute(comm, std::span<const int>(values),
                                               std::span<const int>(dest));
        // Each rank receives, from each of p ranks, the two values congruent
        // to its rank mod p.
        EXPECT_EQ(received.size(), 2u * p);
        for (int v : received) EXPECT_EQ(v % p, comm.rank());
    });
}

TEST(Redistribute, RejectsInvalidRank) {
    runSpmd(2, [&](Comm& comm) {
        std::vector<int> values{1};
        std::vector<int> dest{5};
        EXPECT_THROW((void)geo::par::redistribute(comm, std::span<const int>(values),
                                                  std::span<const int>(dest)),
                     std::invalid_argument);
    });
}

}  // namespace
