#include <gtest/gtest.h>

#include <algorithm>

#include "baseline/hsfc.hpp"
#include "baseline/rcb.hpp"
#include "gen/delaunay2d.hpp"
#include "gen/grid.hpp"
#include "graph/metrics.hpp"
#include "spmv/dist_spmv.hpp"
#include "spmv/spmv.hpp"

namespace {

using namespace geo;
using geo::spmv::buildHaloPlan;
using geo::spmv::runSpmv;

graph::Partition slabs(std::int32_t nx, std::int32_t ny, std::int32_t k) {
    graph::Partition part(static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny));
    for (std::int32_t y = 0; y < ny; ++y)
        for (std::int32_t x = 0; x < nx; ++x)
            part[static_cast<std::size_t>(y) * static_cast<std::size_t>(nx) +
                 static_cast<std::size_t>(x)] = std::min<std::int32_t>(x * k / nx, k - 1);
    return part;
}

TEST(HaloPlan, SlabGridGhostCountsAreColumnSizes) {
    const auto mesh = gen::grid2d(8, 5);
    const auto part = slabs(8, 5, 2);
    const auto plan = buildHaloPlan(mesh.graph, part, 2);
    // Each block needs exactly the 5 boundary vertices of the other side.
    EXPECT_EQ(plan.ghosts[0].size(), 5u);
    EXPECT_EQ(plan.ghosts[1].size(), 5u);
    EXPECT_EQ(plan.neighborCount[0], 1);
    EXPECT_EQ(plan.neighborCount[1], 1);
    EXPECT_EQ(plan.totalGhosts(), 10);
    EXPECT_EQ(plan.maxGhosts(), 5);
}

TEST(HaloPlan, MiddleSlabHasTwoNeighbors) {
    const auto mesh = gen::grid2d(9, 4);
    const auto part = slabs(9, 4, 3);
    const auto plan = buildHaloPlan(mesh.graph, part, 3);
    EXPECT_EQ(plan.neighborCount[1], 2);
    EXPECT_EQ(plan.ghosts[1].size(), 8u);  // 4 from each side
}

TEST(HaloPlan, GhostsMatchCommVolume) {
    // |ghosts of block b| equals comm volume contribution towards b:
    // total ghosts == total comm volume (both count (vertex, foreign
    // block) adjacencies from the consumer side).
    const auto mesh = gen::delaunay2d(3000, 7);
    const auto part = baseline::rcb<2>(mesh.points, {}, 6);
    const auto plan = buildHaloPlan(mesh.graph, part, 6);
    std::int64_t ghostSum = 0;
    for (const auto& g : plan.ghosts) ghostSum += static_cast<std::int64_t>(g.size());
    // comm(V_i) counts, per vertex, adjacent foreign blocks; the consumer
    // of each such pair stores one ghost copy — but ghost dedup is by
    // vertex, not (vertex, block), so ghosts <= commVolume.
    const auto comm = graph::communicationVolume(mesh.graph, part, 6);
    std::int64_t commSum = 0;
    for (const auto c : comm) commSum += c;
    EXPECT_LE(ghostSum, commSum);
    EXPECT_GT(ghostSum, commSum / 4);
}

TEST(Spmv, RunsAndReportsTimings) {
    const auto mesh = gen::grid2d(40, 40);
    const auto part = slabs(40, 40, 4);
    const auto t = runSpmv(mesh.graph, part, 4, 10);
    EXPECT_EQ(t.iterations, 10);
    EXPECT_GT(t.modeledCommSecondsPerIteration, 0.0);
    EXPECT_GE(t.commSecondsPerIteration, 0.0);
    EXPECT_GT(t.computeSecondsPerIteration, 0.0);
    EXPECT_EQ(t.totalGhosts, 3 * 2 * 40);
    EXPECT_EQ(t.maxNeighbors, 2);
}

TEST(Spmv, SingleBlockHasNoCommunication) {
    const auto mesh = gen::grid2d(20, 20);
    const graph::Partition part(400, 0);
    const auto t = runSpmv(mesh.graph, part, 1, 5);
    EXPECT_EQ(t.totalGhosts, 0);
    EXPECT_DOUBLE_EQ(t.modeledCommSecondsPerIteration, 0.0);
}

TEST(Spmv, LowerCommVolumeGivesLowerModeledTime) {
    // A compact partition must beat a striped partition in SpMV comm time —
    // the paper's empirical claim linking comm volume to comm time.
    const auto mesh = gen::grid2d(32, 32);
    const auto compact = slabs(32, 32, 4);
    // Pathological round-robin partition: every vertex borders foreigners.
    graph::Partition striped(static_cast<std::size_t>(32 * 32));
    for (std::size_t i = 0; i < striped.size(); ++i)
        striped[i] = static_cast<std::int32_t>(i % 4);
    const auto tCompact = runSpmv(mesh.graph, compact, 4, 5);
    const auto tStriped = runSpmv(mesh.graph, striped, 4, 5);
    EXPECT_LT(tCompact.modeledCommSecondsPerIteration,
              tStriped.modeledCommSecondsPerIteration);
    EXPECT_LT(tCompact.totalGhosts, tStriped.totalGhosts);
}

TEST(Spmv, ValuesStayFinite) {
    // 100 iterations must not overflow (degree normalization).
    const auto mesh = gen::delaunay2d(1500, 11);
    const auto part = baseline::hsfc<2>(mesh.points, {}, 4);
    const auto t = runSpmv(mesh.graph, part, 4, 100);
    EXPECT_EQ(t.iterations, 100);
    EXPECT_GE(t.commSecondsPerIteration, 0.0);
}

/// Serial reference of the degree-normalized iteration used by both
/// runners.
double referenceChecksum(const graph::CsrGraph& g, int iterations) {
    std::vector<double> x(static_cast<std::size_t>(g.numVertices()));
    for (graph::Vertex v = 0; v < g.numVertices(); ++v)
        x[static_cast<std::size_t>(v)] = 1.0 + 0.001 * static_cast<double>(v % 1000);
    std::vector<double> y(x.size());
    for (int i = 0; i < iterations; ++i) {
        for (graph::Vertex v = 0; v < g.numVertices(); ++v) {
            double acc = 0.0;
            for (const auto u : g.neighbors(v)) acc += x[static_cast<std::size_t>(u)];
            y[static_cast<std::size_t>(v)] =
                acc / static_cast<double>(std::max<std::int64_t>(g.degree(v), 1));
        }
        std::swap(x, y);
    }
    double s = 0.0;
    for (const double v : x) s += v;
    return s;
}

class DistSpmvRanks : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, DistSpmvRanks, ::testing::Values(1, 2, 4, 6));

TEST_P(DistSpmvRanks, MatchesSerialReference) {
    const int ranks = GetParam();
    const auto mesh = gen::delaunay2d(2000, 13);
    const auto part = baseline::rcb<2>(mesh.points, {}, 6);
    const auto t = geo::spmv::runSpmvDistributed(mesh.graph, part, 6, ranks, 8);
    EXPECT_NEAR(t.checksum, referenceChecksum(mesh.graph, 8), 1e-6);
    EXPECT_EQ(t.iterations, 8);
    if (ranks > 1) {
        EXPECT_GT(t.haloBytesPerIteration, 0u);
        EXPECT_GT(t.commSecondsPerIteration, 0.0);
    }
}

TEST(DistSpmv, GhostsMatchPlanWhenRanksEqualBlocks) {
    const auto mesh = gen::grid2d(24, 12);
    const auto part = slabs(24, 12, 4);
    const auto plan = buildHaloPlan(mesh.graph, part, 4);
    const auto t = geo::spmv::runSpmvDistributed(mesh.graph, part, 4, 4, 3);
    EXPECT_EQ(t.totalGhosts, plan.totalGhosts());
}

TEST(DistSpmv, FewerRanksMergeGhosts) {
    // Mapping several blocks to one rank removes intra-rank ghosts, so the
    // distributed ghost total can only shrink relative to the k-rank case.
    const auto mesh = gen::delaunay2d(3000, 17);
    const auto part = baseline::rcb<2>(mesh.points, {}, 8);
    const auto atK = geo::spmv::runSpmvDistributed(mesh.graph, part, 8, 8, 2);
    const auto atHalf = geo::spmv::runSpmvDistributed(mesh.graph, part, 8, 4, 2);
    const auto serial = geo::spmv::runSpmvDistributed(mesh.graph, part, 8, 1, 2);
    EXPECT_LE(atHalf.totalGhosts, atK.totalGhosts);
    EXPECT_EQ(serial.totalGhosts, 0);
    EXPECT_NEAR(atK.checksum, serial.checksum, 1e-6);
}

TEST(Spmv, RejectsBadPartition) {
    const auto mesh = gen::grid2d(5, 5);
    graph::Partition bad(25, 0);
    bad[3] = 9;
    EXPECT_THROW((void)runSpmv(mesh.graph, bad, 2, 1), std::invalid_argument);
    EXPECT_THROW((void)runSpmv(mesh.graph, slabs(5, 5, 2), 2, 0), std::invalid_argument);
}

}  // namespace
