#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <set>
#include <sstream>

#include "core/settings.hpp"
#include "support/assert.hpp"
#include "support/histogram.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace {

using geo::SplitMix64;
using geo::Xoshiro256;

// Pin GEO_THREADS before main() — and before the first defaultThreads()
// call anywhere in this process (its value is read once and cached) — so
// the env-var leg of Settings::resolvedThreads() is testable regardless of
// the environment ctest launched us with. defaultThreads() caches on first
// CALL (function-local static), not at static initialization, so this
// file-scope initializer reliably runs first: nothing in this binary calls
// it during static init.
const bool kGeoThreadsPinned = [] {
    setenv("GEO_THREADS", "3", /*overwrite=*/1);
    return true;
}();

TEST(Rng, SplitMixIsDeterministic) {
    SplitMix64 a(42), b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, XoshiroIsDeterministicPerSeed) {
    Xoshiro256 a(7), b(7), c(8);
    bool anyDiff = false;
    for (int i = 0; i < 100; ++i) {
        const auto va = a(), vb = b(), vc = c();
        EXPECT_EQ(va, vb);
        anyDiff |= (va != vc);
    }
    EXPECT_TRUE(anyDiff);
}

TEST(Rng, UniformInUnitInterval) {
    Xoshiro256 rng(1);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds) {
    Xoshiro256 rng(2);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, BelowStaysInRange) {
    Xoshiro256 rng(3);
    for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversAllResidues) {
    Xoshiro256 rng(4);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) seen.insert(rng.below(5));
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, SplitStreamsDiffer) {
    Xoshiro256 base(9);
    auto s1 = base.split(1);
    auto s2 = base.split(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) same += (s1() == s2());
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformMeanIsCentered) {
    Xoshiro256 rng(5);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Assert, RequireThrowsInvalidArgument) {
    EXPECT_THROW(GEO_REQUIRE(false, "boom"), std::invalid_argument);
    EXPECT_NO_THROW(GEO_REQUIRE(true, ""));
}

TEST(Assert, CheckThrowsLogicError) {
    EXPECT_THROW(GEO_CHECK(1 == 2, "bad"), std::logic_error);
    EXPECT_NO_THROW(GEO_CHECK(1 == 1, ""));
}

TEST(Assert, MessageIsIncluded) {
    try {
        GEO_REQUIRE(false, "the-detail");
        FAIL() << "should have thrown";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("the-detail"), std::string::npos);
    }
}

TEST(Settings, ResolvedThreadsPrecedence) {
    // Precedence: threads > assignThreads (deprecated alias) > GEO_THREADS
    // env > 1. The env leg reads the value pinned by kGeoThreadsPinned
    // above; the final built-in default (1) is only reachable with the
    // variable unset, which cannot be exercised in the same process.
    ASSERT_TRUE(kGeoThreadsPinned);
    EXPECT_EQ(geo::par::defaultThreads(), 3);

    geo::core::Settings s;
    EXPECT_EQ(s.resolvedThreads(), 3);  // both unset: the env default

    s.assignThreads = 5;
    EXPECT_EQ(s.resolvedThreads(), 5);  // alias beats the env default

    s.threads = 2;
    EXPECT_EQ(s.resolvedThreads(), 2);  // threads beats the alias

    s.assignThreads = 0;
    EXPECT_EQ(s.resolvedThreads(), 2);  // threads alone still wins

    s.threads = 0;
    EXPECT_EQ(s.resolvedThreads(), 3);  // back to the env default
}

TEST(Settings, ResolvedThreadsTreatsNonPositiveAsUnset) {
    geo::core::Settings s;
    s.threads = -4;
    s.assignThreads = -2;
    EXPECT_EQ(s.resolvedThreads(), 3);  // negative values fall through
    s.assignThreads = 7;
    EXPECT_EQ(s.resolvedThreads(), 7);  // threads < 1 defers to the alias
}

TEST(Settings, ResolvedRanksPrecedence) {
    // Precedence: ranks > GEO_RANKS env > 1. Unlike GEO_THREADS the env leg
    // is deliberately UNCACHED (geo_launch workers and this test mutate the
    // variable at runtime), so every leg is exercisable in one process.
    setenv("GEO_RANKS", "4", /*overwrite=*/1);
    geo::core::Settings s;
    EXPECT_EQ(s.resolvedRanks(), 4);  // unset field: the env default

    s.ranks = 2;
    EXPECT_EQ(s.resolvedRanks(), 2);  // field beats the env

    s.ranks = 0;
    unsetenv("GEO_RANKS");
    EXPECT_EQ(s.resolvedRanks(), 1);  // both unset: built-in default

    setenv("GEO_RANKS", "-3", 1);
    EXPECT_EQ(s.resolvedRanks(), 1);  // non-positive env falls through
    setenv("GEO_RANKS", "junk", 1);
    EXPECT_EQ(s.resolvedRanks(), 1);  // unparseable env falls through
    unsetenv("GEO_RANKS");

    s.ranks = -2;
    EXPECT_EQ(s.resolvedRanks(), 1);  // non-positive field falls through
}

TEST(Settings, ResolvedTransportPrecedence) {
    using geo::par::TransportKind;
    // Precedence: transport > GEO_TRANSPORT env > simulator. Also uncached.
    unsetenv("GEO_TRANSPORT");
    geo::core::Settings s;
    EXPECT_EQ(s.resolvedTransport(), TransportKind::Sim);  // all unset

    setenv("GEO_TRANSPORT", "tcp", /*overwrite=*/1);
    EXPECT_EQ(s.resolvedTransport(), TransportKind::Tcp);  // env applies

    s.transport = TransportKind::Socket;
    EXPECT_EQ(s.resolvedTransport(), TransportKind::Socket);  // field beats env

    s.transport = TransportKind::Auto;
    setenv("GEO_TRANSPORT", "socket", 1);
    EXPECT_EQ(s.resolvedTransport(), TransportKind::Socket);
    setenv("GEO_TRANSPORT", "sim", 1);
    EXPECT_EQ(s.resolvedTransport(), TransportKind::Sim);
    setenv("GEO_TRANSPORT", "", 1);
    EXPECT_EQ(s.resolvedTransport(), TransportKind::Sim);  // empty = unset

    setenv("GEO_TRANSPORT", "carrier-pigeon", 1);
    EXPECT_THROW((void)s.resolvedTransport(), std::invalid_argument);
    unsetenv("GEO_TRANSPORT");
}

TEST(Settings, TransportKindNamesRoundTrip) {
    using geo::par::TransportKind;
    using geo::par::parseTransportKind;
    using geo::par::transportKindName;
    for (const TransportKind kind :
         {TransportKind::Sim, TransportKind::Socket, TransportKind::Tcp})
        EXPECT_EQ(parseTransportKind(transportKindName(kind)), kind);
    EXPECT_THROW((void)parseTransportKind("auto"), std::invalid_argument);
    EXPECT_THROW((void)parseTransportKind(""), std::invalid_argument);
}

TEST(Timer, MeasuresNonNegativeTime) {
    geo::Timer t;
    double sink = 0.0;
    for (int i = 0; i < 100000; ++i) sink += i * 0.5;
    EXPECT_GT(sink, 0.0);
    EXPECT_GE(t.seconds(), 0.0);
}

TEST(PhaseTimer, AccumulatesNamedPhases) {
    geo::PhaseTimer pt;
    pt.add("a", 1.0);
    pt.add("a", 0.5);
    pt.add("b", 2.0);
    EXPECT_DOUBLE_EQ(pt.get("a"), 1.5);
    EXPECT_DOUBLE_EQ(pt.get("b"), 2.0);
    EXPECT_DOUBLE_EQ(pt.get("missing"), 0.0);
    EXPECT_DOUBLE_EQ(pt.total(), 3.5);
}

TEST(PhaseTimer, ScopeAddsOnDestruction) {
    geo::PhaseTimer pt;
    { auto s = pt.scope("x"); }
    EXPECT_GE(pt.get("x"), 0.0);
    EXPECT_EQ(pt.phases().count("x"), 1u);
}

TEST(Table, PrintsHeaderAndRows) {
    geo::Table t({"graph", "tool", "cut"});
    t.addRow({"mesh1", "geographer", "123"});
    t.addRow({"mesh1", "rcb", "456"});
    std::ostringstream os;
    t.print(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("graph"), std::string::npos);
    EXPECT_NE(s.find("geographer"), std::string::npos);
    EXPECT_NE(s.find("456"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsWrongArity) {
    geo::Table t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), std::invalid_argument);
}

TEST(Table, NumFormatsCompactly) {
    EXPECT_EQ(geo::Table::num(1.5), "1.5");
    EXPECT_EQ(geo::Table::num(2.0), "2");
}

// ------------------------------------------------------- latency histogram

TEST(Histogram, EmptyQuantilesAreZero) {
    geo::support::LatencyHistogram hist;
    EXPECT_EQ(hist.merged().count(), 0u);
    EXPECT_EQ(hist.merged().quantile(0.5), 0.0);
    EXPECT_EQ(hist.merged().quantile(0.99), 0.0);
}

TEST(Histogram, BucketLayoutKnownAnswers) {
    using H = geo::support::LatencyHistogram;
    // Sub-32 ns values get exact unit buckets.
    EXPECT_EQ(H::bucketIndex(0), 0u);
    EXPECT_EQ(H::bucketIndex(1), 1u);
    EXPECT_EQ(H::bucketIndex(31), 31u);
    // 32 opens the first true octave group; 63 ends it.
    EXPECT_EQ(H::bucketIndex(32), 32u);
    EXPECT_EQ(H::bucketIndex(63), 63u);
    // Adjacent sub-buckets split an octave into 32 linear slices: 64..127
    // covers indices 64..95.
    EXPECT_EQ(H::bucketIndex(64), 64u);
    EXPECT_EQ(H::bucketIndex(127), 95u);
    // Every bucket's upper edge maps back into the same bucket.
    for (std::size_t b = 0; b < H::kBuckets; b += 7) {
        const auto nanos =
            static_cast<std::uint64_t>(H::bucketUpperSeconds(b) * 1e9 + 0.5);
        EXPECT_EQ(H::bucketIndex(nanos), b) << "bucket " << b;
    }
}

TEST(Histogram, KnownAnswerQuantiles) {
    // 100 samples at 1ms, 2ms, ..., 100ms: p50 ≈ 50ms, p90 ≈ 90ms,
    // p99 ≈ 99ms, each within the 1/32 bucket-resolution bound.
    geo::support::LatencyHistogram hist;
    for (int i = 1; i <= 100; ++i) hist.record(i * 1e-3);
    const auto view = hist.merged();
    EXPECT_EQ(view.count(), 100u);
    EXPECT_NEAR(view.quantile(0.50), 0.050, 0.050 / 32.0 + 1e-9);
    EXPECT_NEAR(view.quantile(0.90), 0.090, 0.090 / 32.0 + 1e-9);
    EXPECT_NEAR(view.quantile(0.99), 0.099, 0.099 / 32.0 + 1e-9);
    // Degenerate quantiles clamp instead of misindexing.
    EXPECT_GT(view.quantile(0.0), 0.0);
    EXPECT_NEAR(view.quantile(1.0), 0.100, 0.100 / 32.0 + 1e-9);
}

TEST(Histogram, NegativeAndNaNClampToZeroBucket) {
    geo::support::LatencyHistogram hist;
    hist.record(-1.0);
    hist.record(std::nan(""));
    const auto view = hist.merged();
    EXPECT_EQ(view.count(), 2u);
    EXPECT_EQ(view.quantile(1.0), 0.0);  // bucket 0's upper edge is 0s
}

TEST(Histogram, ShardMergeIsAssociativeAndOrderIndependent) {
    // Record the same stream into (a) one shard, (b) spread over 4 shards,
    // (c) two separate histograms merged afterwards — all three must
    // produce identical counts.
    geo::support::LatencyHistogram one(1);
    geo::support::LatencyHistogram four(4);
    geo::support::LatencyHistogram left(2);
    geo::support::LatencyHistogram right(2);
    Xoshiro256 rng(99);
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.uniform() * 0.01;
        one.record(v);
        four.record(v, i % 4);
        (i % 2 == 0 ? left : right).record(v, i % 2);
    }
    const auto a = one.merged();
    const auto b = four.merged();
    auto c = left.merged();
    c.merge(right.merged());
    auto d = right.merged();
    d.merge(left.merged());
    EXPECT_EQ(a.counts, b.counts);
    EXPECT_EQ(a.counts, c.counts);
    EXPECT_EQ(c.counts, d.counts);  // merge order cannot matter
    EXPECT_EQ(a.total, 10000u);
    EXPECT_EQ(c.total, 10000u);
}

}  // namespace
