#include <gtest/gtest.h>

#include <numeric>

#include "gen/grid.hpp"
#include "graph/metrics.hpp"

namespace {

using namespace geo::graph;

/// Slab partition of an nx × ny grid into k vertical slabs.
Partition slabs(std::int32_t nx, std::int32_t ny, std::int32_t k) {
    Partition part(static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny));
    for (std::int32_t y = 0; y < ny; ++y)
        for (std::int32_t x = 0; x < nx; ++x)
            part[static_cast<std::size_t>(y) * static_cast<std::size_t>(nx) +
                 static_cast<std::size_t>(x)] = std::min<std::int32_t>(x * k / nx, k - 1);
    return part;
}

TEST(EdgeCut, SlabPartitionOfGridHasKnownCut) {
    const auto mesh = geo::gen::grid2d(16, 8);
    const auto part = slabs(16, 8, 4);
    // 3 cut columns, each with ny=8 horizontal cut edges.
    EXPECT_EQ(edgeCut(mesh.graph, part), 3 * 8);
}

TEST(EdgeCut, SingleBlockHasZeroCut) {
    const auto mesh = geo::gen::grid2d(10, 10);
    const Partition part(100, 0);
    EXPECT_EQ(edgeCut(mesh.graph, part), 0);
}

TEST(ExternalEdges, CountPerBlock) {
    const auto mesh = geo::gen::grid2d(8, 4);
    const auto part = slabs(8, 4, 2);
    const auto ext = externalEdges(mesh.graph, part, 2);
    // One cut column of 4 edges; both blocks see 4 external edges.
    EXPECT_EQ(ext[0], 4);
    EXPECT_EQ(ext[1], 4);
}

TEST(CommVolume, SlabGrid) {
    const auto mesh = geo::gen::grid2d(8, 4);
    const auto part = slabs(8, 4, 2);
    const auto comm = communicationVolume(mesh.graph, part, 2);
    // Each block has 4 boundary vertices, each adjacent to exactly 1
    // foreign block.
    EXPECT_EQ(comm[0], 4);
    EXPECT_EQ(comm[1], 4);
}

TEST(CommVolume, CountsDistinctForeignBlocksOnce) {
    // Star: center adjacent to 3 leaves in 3 different blocks; center's
    // block contributes 3, each leaf block 1.
    GraphBuilder b(4);
    b.addEdge(0, 1);
    b.addEdge(0, 2);
    b.addEdge(0, 3);
    const auto g = b.build();
    const Partition part{0, 1, 2, 3};
    const auto comm = communicationVolume(g, part, 4);
    EXPECT_EQ(comm[0], 3);
    EXPECT_EQ(comm[1], 1);
    EXPECT_EQ(comm[2], 1);
    EXPECT_EQ(comm[3], 1);
}

TEST(CommVolume, MultipleNeighborsSameBlockCountOnce) {
    // Vertex 0 adjacent to 1 and 2, both in block 1: volume of block 0 is 1.
    GraphBuilder b(3);
    b.addEdge(0, 1);
    b.addEdge(0, 2);
    const auto g = b.build();
    const Partition part{0, 1, 1};
    const auto comm = communicationVolume(g, part, 2);
    EXPECT_EQ(comm[0], 1);
    EXPECT_EQ(comm[1], 2);  // both vertices 1 and 2 see foreign block 0
}

TEST(Imbalance, PerfectBalanceIsZero) {
    const Partition part{0, 0, 1, 1};
    EXPECT_DOUBLE_EQ(imbalance(part, 2), 0.0);
}

TEST(Imbalance, OverloadedBlockIsPositive) {
    const Partition part{0, 0, 0, 1};
    EXPECT_DOUBLE_EQ(imbalance(part, 2), 0.5);  // 3 / ceil(4/2) - 1
}

TEST(Imbalance, RespectsWeights) {
    const Partition part{0, 1};
    const std::vector<double> w{3.0, 1.0};
    EXPECT_DOUBLE_EQ(imbalance(part, 2, w), 0.5);  // 3 / ceil(4/2) - 1
}

TEST(Imbalance, EmptyBlockDoesNotCrash) {
    const Partition part{0, 0};
    EXPECT_DOUBLE_EQ(imbalance(part, 3, {}), 1.0);  // 2/ceil(2/3)-1
}

TEST(Imbalance, PerfectNonUniformSplitIsZero) {
    // 60/25/15 split of 20 unit weights, hit exactly: 12 + 5 + 3.
    Partition part;
    for (int i = 0; i < 12; ++i) part.push_back(0);
    for (int i = 0; i < 5; ++i) part.push_back(1);
    for (int i = 0; i < 3; ++i) part.push_back(2);
    const std::vector<double> fractions{0.6, 0.25, 0.15};
    EXPECT_DOUBLE_EQ(imbalance(part, 3, {}, fractions), 0.0);
    // The uniform metric would misreport this perfectly-on-target split as
    // 12/ceil(20/3) - 1 — the bug the overload fixes.
    EXPECT_NEAR(imbalance(part, 3), 12.0 / 7.0 - 1.0, 1e-12);
}

TEST(Imbalance, NonUniformTargetsUseTargetTimesTotal) {
    // Block 0 holds 4 of weight 6 against a 50% target: 4/3 - 1 = 1/3.
    const Partition part{0, 0, 0, 0, 1, 1};
    const std::vector<double> fractions{0.5, 0.5};
    EXPECT_NEAR(imbalance(part, 2, {}, fractions), 1.0 / 3.0, 1e-12);
    // Un-normalized fractions behave identically.
    const std::vector<double> scaled{2.0, 2.0};
    EXPECT_DOUBLE_EQ(imbalance(part, 2, {}, scaled),
                     imbalance(part, 2, {}, fractions));
    // Weighted: block 1 carries 6 of 8 against a 25% target -> 2.
    const std::vector<double> w{1.0, 0.25, 0.25, 0.5, 3.0, 3.0};
    const std::vector<double> skew{0.75, 0.25};
    EXPECT_NEAR(imbalance(part, 2, w, skew), 6.0 / 2.0 - 1.0, 1e-12);
}

TEST(Imbalance, EmptyFractionsFallBackToUniform) {
    const Partition part{0, 0, 0, 1};
    EXPECT_DOUBLE_EQ(imbalance(part, 2, {}, {}), imbalance(part, 2));
}

TEST(Imbalance, RejectsBadFractions) {
    const Partition part{0, 1};
    const std::vector<double> wrongArity{1.0};
    EXPECT_THROW(imbalance(part, 2, {}, wrongArity), std::invalid_argument);
    const std::vector<double> negative{1.0, -1.0};
    EXPECT_THROW(imbalance(part, 2, {}, negative), std::invalid_argument);
}

TEST(TopologyCommCost, UnitWeightsMatchTotalCommVolume) {
    const auto mesh = geo::gen::grid2d(12, 6);
    const auto part = slabs(12, 6, 3);
    std::vector<double> ones(9, 1.0);
    ones[0] = ones[4] = ones[8] = 0.0;  // diagonal unused by definition
    const auto m = evaluatePartition(mesh.graph, part, 3, {}, false);
    EXPECT_DOUBLE_EQ(topologyCommCost(mesh.graph, part, 3, ones),
                     static_cast<double>(m.totalCommVolume));
}

TEST(TopologyCommCost, WeighsBlockPairsIndividually) {
    const auto mesh = geo::gen::grid2d(12, 6);
    const auto part = slabs(12, 6, 3);
    // Only the (0,1)/(1,0) boundary costs anything: slabs 0|1 exchange
    // 6 ghosts each way, weighted 2.5.
    std::vector<double> cost(9, 0.0);
    cost[0 * 3 + 1] = cost[1 * 3 + 0] = 2.5;
    EXPECT_DOUBLE_EQ(topologyCommCost(mesh.graph, part, 3, cost), 2.5 * 12.0);
}

TEST(TopologyCommCost, AsymmetricMatrixIsReceiverMajor) {
    // Vertices 0, 1 in block 0, vertex 2 in block 1; edges 0-2 and 1-2.
    // Block 1 needs two ghosts (vertices 0 and 1) from block 0; block 0
    // needs one ghost (vertex 2, deduplicated) from block 1. An asymmetric
    // matrix pins the contract: weight = linkCost[receiver*k + owner].
    GraphBuilder b(3);
    b.addEdge(0, 2);
    b.addEdge(1, 2);
    const auto g = b.build();
    const Partition part{0, 0, 1};
    std::vector<double> cost(4, 0.0);
    cost[1 * 2 + 0] = 5.0;  // block 1 reading from block 0
    cost[0 * 2 + 1] = 1.0;  // block 0 reading from block 1
    EXPECT_DOUBLE_EQ(topologyCommCost(g, part, 2, cost), 2.0 * 5.0 + 1.0 * 1.0);
}

TEST(TopologyCommCost, RejectsWrongMatrixSize) {
    const auto mesh = geo::gen::grid2d(4, 4);
    const Partition part(16, 0);
    const std::vector<double> tooSmall(2, 1.0);
    EXPECT_THROW(topologyCommCost(mesh.graph, part, 1, tooSmall),
                 std::invalid_argument);
}

TEST(DiameterBound, PathIsExact) {
    GraphBuilder b(10);
    for (int i = 0; i + 1 < 10; ++i) b.addEdge(i, i + 1);
    const auto g = b.build();
    const std::vector<std::int32_t> mask(10, 0);
    EXPECT_EQ(blockDiameterLowerBound(g, mask, 0), 9);
}

TEST(DiameterBound, GridDoubleSweepFindsExactDiameter) {
    const auto mesh = geo::gen::grid2d(7, 5);
    const std::vector<std::int32_t> mask(35, 0);
    EXPECT_EQ(blockDiameterLowerBound(mesh.graph, mask, 0), 6 + 4);
}

TEST(DiameterBound, DisconnectedBlockIsInfinite) {
    GraphBuilder b(4);
    b.addEdge(0, 1);
    b.addEdge(2, 3);
    const auto g = b.build();
    const std::vector<std::int32_t> mask(4, 0);
    EXPECT_EQ(blockDiameterLowerBound(g, mask, 0), kInfiniteDiameter);
}

TEST(DiameterBound, EmptyBlockIsMinusOne) {
    GraphBuilder b(2);
    b.addEdge(0, 1);
    const auto g = b.build();
    const std::vector<std::int32_t> mask(2, 0);
    EXPECT_EQ(blockDiameterLowerBound(g, mask, 5), -1);
}

TEST(DiameterBound, SingletonBlockIsZero) {
    GraphBuilder b(2);
    b.addEdge(0, 1);
    const auto g = b.build();
    const std::vector<std::int32_t> mask{0, 1};
    EXPECT_EQ(blockDiameterLowerBound(g, mask, 0), 0);
}

TEST(HarmonicMean, OrdinaryValues) {
    const std::vector<std::int32_t> d{2, 2};
    EXPECT_DOUBLE_EQ(harmonicMeanDiameter(d), 2.0);
    const std::vector<std::int32_t> d2{1, 3};
    EXPECT_DOUBLE_EQ(harmonicMeanDiameter(d2), 2.0 / (1.0 + 1.0 / 3.0));
}

TEST(HarmonicMean, InfiniteDiametersContributeZero) {
    const std::vector<std::int32_t> d{2, kInfiniteDiameter};
    EXPECT_DOUBLE_EQ(harmonicMeanDiameter(d), 2.0 / (1.0 / 2.0));
}

TEST(HarmonicMean, EmptyBlocksSkipped) {
    const std::vector<std::int32_t> d{-1, 4};
    EXPECT_DOUBLE_EQ(harmonicMeanDiameter(d), 4.0);
}

TEST(BlockComponents, DetectsFragmentedBlocks) {
    const auto mesh = geo::gen::grid2d(6, 1);  // path of 6
    // Block 0 = {0, 1, 4, 5} (two fragments), block 1 = {2, 3}.
    const Partition part{0, 0, 1, 1, 0, 0};
    const auto comps = blockComponents(mesh.graph, part, 2);
    EXPECT_EQ(comps[0], 2);
    EXPECT_EQ(comps[1], 1);
}

TEST(Evaluate, AllMetricsOnSlabGrid) {
    const auto mesh = geo::gen::grid2d(12, 6);
    const auto part = slabs(12, 6, 3);
    const auto m = evaluatePartition(mesh.graph, part, 3);
    EXPECT_EQ(m.edgeCut, 2 * 6);
    EXPECT_EQ(m.maxCommVolume, 12);  // middle slab has two foreign boundaries
    EXPECT_EQ(m.totalCommVolume, 6 + 12 + 6);
    EXPECT_DOUBLE_EQ(m.imbalance, 0.0);
    EXPECT_EQ(m.disconnectedBlocks, 0);
    EXPECT_EQ(m.emptyBlocks, 0);
    // Each 4x6 slab has diameter 3+5=8.
    EXPECT_DOUBLE_EQ(m.harmonicMeanDiameter, 8.0);
}

TEST(Evaluate, ValidationRejectsBadPartition) {
    const auto mesh = geo::gen::grid2d(3, 3);
    Partition part(9, 0);
    part[4] = 7;
    EXPECT_THROW(evaluatePartition(mesh.graph, part, 2), std::invalid_argument);
    EXPECT_THROW(evaluatePartition(mesh.graph, Partition{0}, 1), std::invalid_argument);
}

TEST(Evaluate, EmptyBlocksAreCounted) {
    const auto mesh = geo::gen::grid2d(4, 1);
    const Partition part{0, 0, 2, 2};  // block 1 empty
    const auto m = evaluatePartition(mesh.graph, part, 3);
    EXPECT_EQ(m.emptyBlocks, 1);
}

}  // namespace
