#include <gtest/gtest.h>

#include <limits>

#include "core/balanced_kmeans.hpp"
#include "core/center_tree.hpp"
#include "par/comm.hpp"
#include "support/rng.hpp"

namespace {

using namespace geo;
using geo::core::CenterKdTree;

template <int D>
std::vector<Point<D>> randomPoints(int n, std::uint64_t seed) {
    Xoshiro256 rng(seed);
    std::vector<Point<D>> pts;
    for (int i = 0; i < n; ++i) {
        Point<D> p;
        for (int d = 0; d < D; ++d) p[d] = rng.uniform();
        pts.push_back(p);
    }
    return pts;
}

class TreeSweep : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(CenterCounts, TreeSweep, ::testing::Values(1, 2, 5, 16, 64, 257));

TEST_P(TreeSweep, MatchesBruteForceWithUniformInfluence) {
    const int k = GetParam();
    const auto centers = randomPoints<2>(k, 11);
    const std::vector<double> influence(static_cast<std::size_t>(k), 1.0);
    const CenterKdTree<2> tree(centers, influence);
    const auto queries = randomPoints<2>(300, 13);
    for (const auto& q : queries) {
        const auto res = tree.query(q);
        double best = std::numeric_limits<double>::infinity();
        std::int32_t bestIdx = -1;
        for (std::size_t c = 0; c < centers.size(); ++c) {
            const double d = distance(q, centers[c]);
            if (d < best) {
                best = d;
                bestIdx = static_cast<std::int32_t>(c);
            }
        }
        EXPECT_EQ(res.best, bestIdx);
        EXPECT_NEAR(res.bestDistance, best, 1e-12);
    }
}

TEST_P(TreeSweep, MatchesBruteForceWithVariedInfluence) {
    const int k = GetParam();
    const auto centers = randomPoints<2>(k, 17);
    Xoshiro256 rng(19);
    std::vector<double> influence;
    for (int c = 0; c < k; ++c) influence.push_back(rng.uniform(0.25, 4.0));
    const CenterKdTree<2> tree(centers, influence);
    const auto queries = randomPoints<2>(300, 23);
    for (const auto& q : queries) {
        const auto res = tree.query(q);
        double best = std::numeric_limits<double>::infinity(), second = best;
        std::int32_t bestIdx = -1;
        for (std::size_t c = 0; c < centers.size(); ++c) {
            const double d = distance(q, centers[c]) / influence[c];
            if (d < best) {
                second = best;
                best = d;
                bestIdx = static_cast<std::int32_t>(c);
            } else if (d < second) {
                second = d;
            }
        }
        EXPECT_EQ(res.best, bestIdx);
        EXPECT_NEAR(res.bestDistance, best, 1e-12);
        if (k > 1) EXPECT_NEAR(res.secondDistance, second, 1e-12);
    }
}

TEST(CenterKdTree, WorksIn3d) {
    const auto centers = randomPoints<3>(40, 29);
    Xoshiro256 rng(31);
    std::vector<double> influence;
    for (int c = 0; c < 40; ++c) influence.push_back(rng.uniform(0.5, 2.0));
    const CenterKdTree<3> tree(centers, influence);
    for (const auto& q : randomPoints<3>(100, 37)) {
        const auto res = tree.query(q);
        double best = std::numeric_limits<double>::infinity();
        std::int32_t bestIdx = -1;
        for (std::size_t c = 0; c < centers.size(); ++c) {
            const double d = distance(q, centers[c]) / influence[c];
            if (d < best) {
                best = d;
                bestIdx = static_cast<std::int32_t>(c);
            }
        }
        EXPECT_EQ(res.best, bestIdx);
    }
}

TEST(CenterKdTree, RejectsBadInput) {
    const std::vector<Point2> none;
    const std::vector<double> noInfluence;
    EXPECT_THROW(CenterKdTree<2>(none, noInfluence), std::invalid_argument);
    const auto centers = randomPoints<2>(3, 41);
    const std::vector<double> wrong(2, 1.0);
    EXPECT_THROW(CenterKdTree<2>(centers, wrong), std::invalid_argument);
}

TEST_P(TreeSweep, SquaredDomainQueryReturnsSameIds) {
    // queryNearestIds computes and prunes in the squared effective-distance
    // domain; squaring is monotone, so it must find the same best (and,
    // where defined, second-best) center as the sqrt-domain query.
    const int k = GetParam();
    const auto centers = randomPoints<2>(k, 53);
    Xoshiro256 rng(59);
    std::vector<double> influence;
    for (int c = 0; c < k; ++c) influence.push_back(rng.uniform(0.25, 4.0));
    const CenterKdTree<2> tree(centers, influence);
    for (const auto& q : randomPoints<2>(300, 61)) {
        const auto sqrtRes = tree.query(q);
        const auto ids = tree.queryNearestIds(q);
        EXPECT_EQ(ids.best, sqrtRes.best);
        if (k == 1) EXPECT_EQ(ids.second, -1);
    }
}

TEST(CenterKdTree, RebuildInPlaceMatchesFreshTree) {
    const auto first = randomPoints<2>(40, 67);
    const auto second = randomPoints<2>(25, 71);
    Xoshiro256 rng(73);
    std::vector<double> infFirst, infSecond;
    for (int c = 0; c < 40; ++c) infFirst.push_back(rng.uniform(0.5, 2.0));
    for (int c = 0; c < 25; ++c) infSecond.push_back(rng.uniform(0.5, 2.0));

    CenterKdTree<2> reused(first, infFirst);
    reused.rebuild(second, infSecond);  // shrinks k, reuses storage
    const CenterKdTree<2> fresh(second, infSecond);
    EXPECT_EQ(reused.size(), 25);
    for (const auto& q : randomPoints<2>(200, 79)) {
        const auto a = reused.query(q);
        const auto b = fresh.query(q);
        EXPECT_EQ(a.best, b.best);
        EXPECT_EQ(a.bestDistance, b.bestDistance);
        EXPECT_EQ(a.secondDistance, b.secondDistance);
    }
}

TEST(KMeansWithKdTree, SameResultAsLinearScan) {
    const auto pts = randomPoints<2>(3000, 43);
    Xoshiro256 rng(47);
    std::vector<Point2> centers;
    for (int c = 0; c < 8; ++c) centers.push_back(Point2{{rng.uniform(), rng.uniform()}});
    core::Settings scan, tree;
    scan.sampledInitialization = tree.sampledInitialization = false;
    tree.useKdTree = true;
    tree.hamerlyBounds = false;  // isolate the kd-tree path
    scan.hamerlyBounds = false;
    scan.boundingBoxPruning = false;
    std::vector<std::int32_t> a, b;
    par::runSpmd(1, [&](par::Comm& comm) {
        a = core::balancedKMeans<2>(comm, pts, {}, centers, scan).assignment;
    });
    par::runSpmd(1, [&](par::Comm& comm) {
        b = core::balancedKMeans<2>(comm, pts, {}, centers, tree).assignment;
    });
    EXPECT_EQ(a, b);
}

TEST(KMeansWithKdTree, FastEngineMatchesReferenceOnKdTreePath) {
    // The engine's kd-tree path queries in the squared domain and
    // materializes the Hamerly bounds itself; it must reproduce the
    // reference (sqrt-domain query) outcome exactly, bounds enabled.
    const auto pts = randomPoints<2>(3000, 83);
    Xoshiro256 rng(89);
    std::vector<Point2> centers;
    for (int c = 0; c < 10; ++c) centers.push_back(Point2{{rng.uniform(), rng.uniform()}});
    core::Settings reference, fast;
    reference.useKdTree = fast.useKdTree = true;
    reference.referenceAssignment = true;
    fast.referenceAssignment = false;
    fast.threads = 2;
    std::vector<std::int32_t> a, b;
    par::runSpmd(1, [&](par::Comm& comm) {
        a = core::balancedKMeans<2>(comm, pts, {}, centers, reference).assignment;
    });
    par::runSpmd(1, [&](par::Comm& comm) {
        b = core::balancedKMeans<2>(comm, pts, {}, centers, fast).assignment;
    });
    EXPECT_EQ(a, b);
}

}  // namespace
