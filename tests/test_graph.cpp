#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "gen/grid.hpp"
#include "graph/csr.hpp"

namespace {

using geo::graph::bfs;
using geo::graph::connectedComponents;
using geo::graph::CsrGraph;
using geo::graph::GraphBuilder;
using geo::graph::Vertex;

CsrGraph path(int n) {
    GraphBuilder b(n);
    for (int i = 0; i + 1 < n; ++i) b.addEdge(i, i + 1);
    return b.build();
}

TEST(GraphBuilder, BuildsSymmetricSortedCsr) {
    GraphBuilder b(4);
    b.addEdge(0, 1);
    b.addEdge(2, 1);
    b.addEdge(3, 0);
    const auto g = b.build();
    EXPECT_EQ(g.numVertices(), 4);
    EXPECT_EQ(g.numEdges(), 3);
    EXPECT_NO_THROW(g.validate());
    const auto nbrs1 = g.neighbors(1);
    EXPECT_EQ(std::vector<Vertex>(nbrs1.begin(), nbrs1.end()), (std::vector<Vertex>{0, 2}));
}

TEST(GraphBuilder, DeduplicatesAndDropsSelfLoops) {
    GraphBuilder b(3);
    b.addEdge(0, 1);
    b.addEdge(1, 0);
    b.addEdge(0, 1);
    b.addEdge(2, 2);
    const auto g = b.build();
    EXPECT_EQ(g.numEdges(), 1);
    EXPECT_EQ(g.degree(2), 0);
    EXPECT_NO_THROW(g.validate());
}

TEST(GraphBuilder, RejectsOutOfRangeEndpoint) {
    GraphBuilder b(2);
    b.addEdge(0, 5);
    EXPECT_THROW((void)b.build(), std::invalid_argument);
}

TEST(Csr, EmptyGraph) {
    GraphBuilder b(0);
    const auto g = b.build();
    EXPECT_EQ(g.numVertices(), 0);
    EXPECT_EQ(g.numEdges(), 0);
}

TEST(Csr, ConstructorValidatesOffsets) {
    EXPECT_THROW(CsrGraph({}, {}), std::invalid_argument);
    EXPECT_THROW(CsrGraph({0, 5}, {1}), std::invalid_argument);
}

TEST(Bfs, DistancesOnPath) {
    const auto g = path(6);
    const auto r = bfs(g, 0);
    for (int i = 0; i < 6; ++i) EXPECT_EQ(r.distance[static_cast<std::size_t>(i)], i);
    EXPECT_EQ(r.farthest, 5);
    EXPECT_EQ(r.eccentricity, 5);
}

TEST(Bfs, UnreachableVerticesGetMinusOne) {
    GraphBuilder b(4);
    b.addEdge(0, 1);  // 2, 3 disconnected
    b.addEdge(2, 3);
    const auto g = b.build();
    const auto r = bfs(g, 0);
    EXPECT_EQ(r.distance[1], 1);
    EXPECT_EQ(r.distance[2], -1);
    EXPECT_EQ(r.distance[3], -1);
}

TEST(Bfs, MaskRestrictsTraversal) {
    const auto g = path(6);
    // Only vertices 0..2 in scope.
    std::vector<std::int32_t> mask{7, 7, 7, 8, 8, 8};
    const auto r = bfs(g, 0, mask, 7);
    EXPECT_EQ(r.distance[2], 2);
    EXPECT_EQ(r.distance[3], -1);
    EXPECT_EQ(r.eccentricity, 2);
}

TEST(Bfs, SourceOutsideMaskThrows) {
    const auto g = path(3);
    std::vector<std::int32_t> mask{1, 0, 0};
    EXPECT_THROW(bfs(g, 1, mask, 1), std::invalid_argument);
}

TEST(Components, CountsAndLabels) {
    GraphBuilder b(7);
    b.addEdge(0, 1);
    b.addEdge(1, 2);
    b.addEdge(3, 4);
    // 5, 6 isolated
    const auto g = b.build();
    const auto c = connectedComponents(g);
    EXPECT_EQ(c.count, 4);
    EXPECT_EQ(c.id[0], c.id[2]);
    EXPECT_EQ(c.id[3], c.id[4]);
    EXPECT_NE(c.id[0], c.id[3]);
    EXPECT_NE(c.id[5], c.id[6]);
}

TEST(Components, GridIsConnected) {
    const auto mesh = geo::gen::grid2d(13, 9);
    const auto c = connectedComponents(mesh.graph);
    EXPECT_EQ(c.count, 1);
}

TEST(Grid2d, StructureIsCorrect) {
    const auto mesh = geo::gen::grid2d(4, 3);
    EXPECT_EQ(mesh.graph.numVertices(), 12);
    // Edges: 3*3 horizontal + 4*2 vertical = 17.
    EXPECT_EQ(mesh.graph.numEdges(), 17);
    EXPECT_NO_THROW(mesh.graph.validate());
    // Corner has degree 2, interior degree 4.
    EXPECT_EQ(mesh.graph.degree(0), 2);
    EXPECT_EQ(mesh.graph.degree(5), 4);
}

TEST(Grid3d, StructureIsCorrect) {
    const auto mesh = geo::gen::grid3d(3, 3, 3);
    EXPECT_EQ(mesh.graph.numVertices(), 27);
    // Edges: 3 directions * 2*3*3 = 54.
    EXPECT_EQ(mesh.graph.numEdges(), 54);
    // Center vertex has degree 6.
    EXPECT_EQ(mesh.graph.degree(13), 6);
    EXPECT_NO_THROW(mesh.graph.validate());
}

TEST(Grid3d, BfsDiameterMatchesManhattan) {
    const auto mesh = geo::gen::grid3d(4, 4, 4);
    const auto r = bfs(mesh.graph, 0);
    EXPECT_EQ(r.eccentricity, 9);  // (4-1)*3
}

}  // namespace
