#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/balanced_kmeans.hpp"
#include "par/comm.hpp"
#include "support/rng.hpp"

namespace {

using geo::Point2;
using geo::Point3;
using geo::Xoshiro256;
using geo::core::balancedKMeans;
using geo::core::KMeansOutcome;
using geo::core::Settings;
using geo::par::Comm;
using geo::par::runSpmd;

std::vector<Point2> uniformPoints(int n, std::uint64_t seed) {
    Xoshiro256 rng(seed);
    std::vector<Point2> pts;
    pts.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) pts.push_back(Point2{{rng.uniform(), rng.uniform()}});
    return pts;
}

/// Evenly spread deterministic centers for tests.
std::vector<Point2> seedCenters(int k, std::uint64_t seed) {
    Xoshiro256 rng(seed);
    std::vector<Point2> centers;
    for (int i = 0; i < k; ++i) centers.push_back(Point2{{rng.uniform(), rng.uniform()}});
    return centers;
}

double globalImbalance(std::span<const std::int32_t> assignment, int k,
                       std::span<const double> weights = {}) {
    std::vector<double> sizes(static_cast<std::size_t>(k), 0.0);
    double total = 0.0;
    for (std::size_t i = 0; i < assignment.size(); ++i) {
        const double w = weights.empty() ? 1.0 : weights[i];
        sizes[static_cast<std::size_t>(assignment[i])] += w;
        total += w;
    }
    return *std::max_element(sizes.begin(), sizes.end()) / std::ceil(total / k) - 1.0;
}

TEST(BalancedKMeans, SerialAchievesBalanceOnUniformPoints) {
    const auto pts = uniformPoints(4000, 3);
    Settings s;
    s.epsilon = 0.03;
    runSpmd(1, [&](Comm& comm) {
        const auto out = balancedKMeans<2>(comm, pts, {}, seedCenters(8, 99), s);
        ASSERT_EQ(out.assignment.size(), pts.size());
        EXPECT_LE(out.imbalance, s.epsilon + 1e-9);
        EXPECT_LE(globalImbalance(out.assignment, 8), s.epsilon + 1e-9);
    });
}

class KMeansRankSweep : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, KMeansRankSweep, ::testing::Values(1, 2, 4, 8));

TEST_P(KMeansRankSweep, DistributedBalanceAndFullAssignment) {
    const int p = GetParam();
    const int k = 6;
    const auto all = uniformPoints(3000, 5);
    Settings s;
    s.epsilon = 0.05;
    runSpmd(p, [&](Comm& comm) {
        // Block-distribute the points.
        const auto n = static_cast<std::int64_t>(all.size());
        const std::int64_t lo = n * comm.rank() / p, hi = n * (comm.rank() + 1) / p;
        std::vector<Point2> local(all.begin() + lo, all.begin() + hi);
        const auto out = balancedKMeans<2>(comm, local, {}, seedCenters(k, 7), s);
        ASSERT_EQ(out.assignment.size(), local.size());
        for (const auto a : out.assignment) {
            EXPECT_GE(a, 0);
            EXPECT_LT(a, k);
        }
        EXPECT_LE(out.imbalance, s.epsilon + 1e-9);

        // Centers and influence are replicated bit-identically.
        auto flat = std::vector<double>();
        for (const auto& c : out.centers) {
            flat.push_back(c[0]);
            flat.push_back(c[1]);
        }
        flat.insert(flat.end(), out.influence.begin(), out.influence.end());
        auto maxv = flat, minv = flat;
        comm.allreduceMax(std::span<double>(maxv));
        comm.allreduceMin(std::span<double>(minv));
        for (std::size_t i = 0; i < flat.size(); ++i) EXPECT_EQ(maxv[i], minv[i]);
    });
}

TEST(BalancedKMeans, RespectsNodeWeights) {
    // Heavily weighted cluster of points in one corner: without balancing
    // by weight, one block would be overloaded.
    Xoshiro256 rng(11);
    std::vector<Point2> pts;
    std::vector<double> w;
    for (int i = 0; i < 2000; ++i) {
        const Point2 pt{{rng.uniform(), rng.uniform()}};
        pts.push_back(pt);
        // Weight gradient: left half much heavier.
        w.push_back(pt[0] < 0.5 ? 9.0 : 1.0);
    }
    Settings s;
    s.epsilon = 0.05;
    s.maxIterations = 80;
    runSpmd(1, [&](Comm& comm) {
        const auto out = balancedKMeans<2>(comm, pts, w, seedCenters(5, 13), s);
        EXPECT_LE(globalImbalance(out.assignment, 5, w), s.epsilon + 1e-9);
    });
}

TEST(BalancedKMeans, UnbalancedPlainLloydWouldFail) {
    // Two dense clusters + sparse background; plain k-means with k=4 would
    // give wildly unequal blocks. Balanced version must not.
    Xoshiro256 rng(17);
    std::vector<Point2> pts;
    for (int i = 0; i < 1800; ++i)
        pts.push_back(Point2{{0.1 + 0.05 * rng.uniform(), 0.1 + 0.05 * rng.uniform()}});
    for (int i = 0; i < 1800; ++i)
        pts.push_back(Point2{{0.9 - 0.05 * rng.uniform(), 0.9 - 0.05 * rng.uniform()}});
    for (int i = 0; i < 400; ++i) pts.push_back(Point2{{rng.uniform(), rng.uniform()}});
    Settings s;
    s.epsilon = 0.05;
    s.maxIterations = 100;
    runSpmd(1, [&](Comm& comm) {
        const auto out = balancedKMeans<2>(comm, pts, {}, seedCenters(4, 23), s);
        EXPECT_LE(out.imbalance, s.epsilon + 1e-9);
    });
}

TEST(BalancedKMeans, InfluenceDeviatesFromOneUnderImbalance) {
    Xoshiro256 rng(19);
    std::vector<Point2> pts;
    for (int i = 0; i < 1500; ++i)
        pts.push_back(Point2{{0.2 * rng.uniform(), rng.uniform()}});  // dense strip
    for (int i = 0; i < 500; ++i)
        pts.push_back(Point2{{0.2 + 0.8 * rng.uniform(), rng.uniform()}});
    Settings s;
    runSpmd(1, [&](Comm& comm) {
        const auto out = balancedKMeans<2>(comm, pts, {}, seedCenters(4, 29), s);
        double spread = 0.0;
        for (const double inf : out.influence) spread = std::max(spread, std::abs(inf - 1.0));
        EXPECT_GT(spread, 0.001);  // balancing actually used influence
        for (const double inf : out.influence) EXPECT_GT(inf, 0.0);
    });
}

TEST(BalancedKMeans, HamerlyBoundsDoNotChangeResult) {
    const auto pts = uniformPoints(2500, 31);
    Settings withBounds, without;
    withBounds.hamerlyBounds = true;
    without.hamerlyBounds = false;
    withBounds.sampledInitialization = without.sampledInitialization = false;
    std::vector<std::int32_t> a, b;
    runSpmd(1, [&](Comm& comm) {
        a = balancedKMeans<2>(comm, pts, {}, seedCenters(6, 37), withBounds).assignment;
    });
    runSpmd(1, [&](Comm& comm) {
        b = balancedKMeans<2>(comm, pts, {}, seedCenters(6, 37), without).assignment;
    });
    EXPECT_EQ(a, b);
}

TEST(BalancedKMeans, BboxPruningDoesNotChangeResult) {
    const auto pts = uniformPoints(2500, 41);
    Settings withPruning, without;
    withPruning.boundingBoxPruning = true;
    without.boundingBoxPruning = false;
    withPruning.sampledInitialization = without.sampledInitialization = false;
    std::vector<std::int32_t> a, b;
    runSpmd(1, [&](Comm& comm) {
        a = balancedKMeans<2>(comm, pts, {}, seedCenters(9, 43), withPruning).assignment;
    });
    runSpmd(1, [&](Comm& comm) {
        b = balancedKMeans<2>(comm, pts, {}, seedCenters(9, 43), without).assignment;
    });
    EXPECT_EQ(a, b);
}

TEST(BalancedKMeans, BoundsSkipSubstantialWorkInLaterPhases) {
    const auto pts = uniformPoints(6000, 47);
    Settings s;
    s.sampledInitialization = false;
    runSpmd(1, [&](Comm& comm) {
        const auto out = balancedKMeans<2>(comm, pts, {}, seedCenters(12, 53), s);
        // The paper reports ~80% skip rate; require a healthy majority.
        EXPECT_GT(out.counters.skipFraction(), 0.4);
        EXPECT_GT(out.counters.boundSkips, 0u);
        // Pruning must have saved distance calcs vs the naive k*n per sweep.
        const auto naive = static_cast<std::uint64_t>(out.counters.balanceIterations) *
                           static_cast<std::uint64_t>(pts.size()) * 12u;
        EXPECT_LT(out.counters.distanceCalcs, naive);
    });
}

TEST(BalancedKMeans, SampledInitMatchesQualityOfFullInit) {
    const auto pts = uniformPoints(4000, 59);
    auto sumSquares = [&](const KMeansOutcome<2>& out) {
        double ss = 0.0;
        for (std::size_t i = 0; i < pts.size(); ++i)
            ss += squaredDistance(pts[i], out.centers[static_cast<std::size_t>(
                                              out.assignment[i])]);
        return ss;
    };
    Settings sampled, full;
    sampled.sampledInitialization = true;
    full.sampledInitialization = false;
    double ssSampled = 0.0, ssFull = 0.0;
    runSpmd(1, [&](Comm& comm) {
        ssSampled = sumSquares(balancedKMeans<2>(comm, pts, {}, seedCenters(8, 61), sampled));
    });
    runSpmd(1, [&](Comm& comm) {
        ssFull = sumSquares(balancedKMeans<2>(comm, pts, {}, seedCenters(8, 61), full));
    });
    // "Starting with only a randomly sampled subset ... does not impact the
    // quality noticeably" — allow 25% slack.
    EXPECT_LT(ssSampled, ssFull * 1.25);
}

TEST(BalancedKMeans, WorksIn3d) {
    Xoshiro256 rng(67);
    std::vector<Point3> pts;
    for (int i = 0; i < 3000; ++i)
        pts.push_back(Point3{{rng.uniform(), rng.uniform(), rng.uniform()}});
    std::vector<Point3> centers;
    for (int i = 0; i < 5; ++i)
        centers.push_back(Point3{{rng.uniform(), rng.uniform(), rng.uniform()}});
    Settings s;
    runSpmd(2, [&](Comm& comm) {
        const auto n = static_cast<std::int64_t>(pts.size());
        const std::int64_t lo = n * comm.rank() / 2, hi = n * (comm.rank() + 1) / 2;
        std::vector<Point3> local(pts.begin() + lo, pts.begin() + hi);
        const auto out = balancedKMeans<3>(comm, local, {}, centers, s);
        EXPECT_LE(out.imbalance, s.epsilon + 1e-9);
    });
}

TEST(BalancedKMeans, SingleClusterTrivia) {
    const auto pts = uniformPoints(100, 71);
    Settings s;
    runSpmd(1, [&](Comm& comm) {
        const auto out = balancedKMeans<2>(comm, pts, {}, {Point2{{0.5, 0.5}}}, s);
        for (const auto a : out.assignment) EXPECT_EQ(a, 0);
        EXPECT_LE(out.imbalance, 1e-9);
    });
}

TEST(BalancedKMeans, RejectsMismatchedWeights) {
    const auto pts = uniformPoints(10, 73);
    const std::vector<double> wrong(3, 1.0);
    Settings s;
    runSpmd(1, [&](Comm& comm) {
        EXPECT_THROW(
            (void)balancedKMeans<2>(comm, pts, wrong, seedCenters(2, 79), s),
            std::invalid_argument);
    });
}

TEST(HeterogeneousTargets, NonUniformBlockSizesAreHonored) {
    // Paper footnote 1: non-uniform target sizes for heterogeneous
    // architectures. Ask for a 60/25/15 split.
    const auto pts = uniformPoints(4000, 53);
    Settings s;
    s.targetFractions = {0.6, 0.25, 0.15};
    s.epsilon = 0.05;
    s.maxIterations = 80;
    runSpmd(1, [&](Comm& comm) {
        const auto out = balancedKMeans<2>(comm, pts, {}, seedCenters(3, 59), s);
        std::vector<double> sizes(3, 0.0);
        for (const auto a : out.assignment) sizes[static_cast<std::size_t>(a)] += 1.0;
        EXPECT_NEAR(sizes[0] / 4000.0, 0.60, 0.05);
        EXPECT_NEAR(sizes[1] / 4000.0, 0.25, 0.04);
        EXPECT_NEAR(sizes[2] / 4000.0, 0.15, 0.03);
    });
}

TEST(HeterogeneousTargets, UnnormalizedFractionsAreNormalized) {
    // Fractions are relative shares, not probabilities: {12, 5, 3} must
    // behave exactly like {0.6, 0.25, 0.15}.
    const auto pts = uniformPoints(4000, 53);
    Settings normalized, scaled;
    normalized.targetFractions = {0.6, 0.25, 0.15};
    scaled.targetFractions = {12.0, 5.0, 3.0};
    normalized.epsilon = scaled.epsilon = 0.05;
    normalized.maxIterations = scaled.maxIterations = 80;
    std::vector<std::int32_t> a, b;
    double imbA = 0.0, imbB = 0.0;
    runSpmd(1, [&](Comm& comm) {
        const auto out = balancedKMeans<2>(comm, pts, {}, seedCenters(3, 59), normalized);
        a = out.assignment;
        imbA = out.imbalance;
    });
    runSpmd(1, [&](Comm& comm) {
        const auto out = balancedKMeans<2>(comm, pts, {}, seedCenters(3, 59), scaled);
        b = out.assignment;
        imbB = out.imbalance;
    });
    EXPECT_EQ(a, b);
    EXPECT_DOUBLE_EQ(imbA, imbB);
    EXPECT_LE(imbA, 0.05 + 1e-9);
}

TEST(HeterogeneousTargets, RejectsBadFractions) {
    const auto pts = uniformPoints(100, 61);
    const std::vector<Point2> centers{Point2{{0.2, 0.2}}, Point2{{0.8, 0.8}}};
    Settings s;
    s.targetFractions = {0.5};  // wrong arity
    runSpmd(1, [&](Comm& comm) {
        EXPECT_THROW((void)balancedKMeans<2>(comm, pts, {}, centers, s),
                     std::invalid_argument);
    });
    s.targetFractions = {0.5, -0.5};
    runSpmd(1, [&](Comm& comm) {
        EXPECT_THROW((void)balancedKMeans<2>(comm, pts, {}, centers, s),
                     std::invalid_argument);
    });
}

TEST(BalancedKMeans, DeterministicAcrossRuns) {
    const auto pts = uniformPoints(1500, 83);
    Settings s;
    std::vector<std::int32_t> first;
    for (int trial = 0; trial < 2; ++trial) {
        runSpmd(3, [&](Comm& comm) {
            const auto n = static_cast<std::int64_t>(pts.size());
            const std::int64_t lo = n * comm.rank() / 3, hi = n * (comm.rank() + 1) / 3;
            std::vector<Point2> local(pts.begin() + lo, pts.begin() + hi);
            const auto out = balancedKMeans<2>(comm, local, {}, seedCenters(4, 89), s);
            const auto mine = comm.allgatherv(std::span<const std::int32_t>(out.assignment));
            if (comm.isRoot()) {
                if (trial == 0)
                    first = mine;
                else
                    EXPECT_EQ(first, mine);
            }
        });
    }
}

}  // namespace
