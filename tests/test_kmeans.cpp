#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <numeric>
#include <string>

#include "core/balanced_kmeans.hpp"
#include "geometry/box.hpp"
#include "par/comm.hpp"
#include "support/rng.hpp"

namespace {

using geo::Point2;
using geo::Point3;
using geo::Xoshiro256;
using geo::core::balancedKMeans;
using geo::core::KMeansOutcome;
using geo::core::Settings;
using geo::par::Comm;
using geo::par::runSpmd;

std::vector<Point2> uniformPoints(int n, std::uint64_t seed) {
    Xoshiro256 rng(seed);
    std::vector<Point2> pts;
    pts.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) pts.push_back(Point2{{rng.uniform(), rng.uniform()}});
    return pts;
}

/// Evenly spread deterministic centers for tests.
std::vector<Point2> seedCenters(int k, std::uint64_t seed) {
    Xoshiro256 rng(seed);
    std::vector<Point2> centers;
    for (int i = 0; i < k; ++i) centers.push_back(Point2{{rng.uniform(), rng.uniform()}});
    return centers;
}

double globalImbalance(std::span<const std::int32_t> assignment, int k,
                       std::span<const double> weights = {}) {
    std::vector<double> sizes(static_cast<std::size_t>(k), 0.0);
    double total = 0.0;
    for (std::size_t i = 0; i < assignment.size(); ++i) {
        const double w = weights.empty() ? 1.0 : weights[i];
        sizes[static_cast<std::size_t>(assignment[i])] += w;
        total += w;
    }
    return *std::max_element(sizes.begin(), sizes.end()) / std::ceil(total / k) - 1.0;
}

TEST(BalancedKMeans, SerialAchievesBalanceOnUniformPoints) {
    const auto pts = uniformPoints(4000, 3);
    Settings s;
    s.epsilon = 0.03;
    runSpmd(1, [&](Comm& comm) {
        const auto out = balancedKMeans<2>(comm, pts, {}, seedCenters(8, 99), s);
        ASSERT_EQ(out.assignment.size(), pts.size());
        EXPECT_LE(out.imbalance, s.epsilon + 1e-9);
        EXPECT_LE(globalImbalance(out.assignment, 8), s.epsilon + 1e-9);
    });
}

class KMeansRankSweep : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, KMeansRankSweep, ::testing::Values(1, 2, 4, 8));

TEST_P(KMeansRankSweep, DistributedBalanceAndFullAssignment) {
    const int p = GetParam();
    const int k = 6;
    const auto all = uniformPoints(3000, 5);
    Settings s;
    s.epsilon = 0.05;
    runSpmd(p, [&](Comm& comm) {
        // Block-distribute the points.
        const auto n = static_cast<std::int64_t>(all.size());
        const std::int64_t lo = n * comm.rank() / p, hi = n * (comm.rank() + 1) / p;
        std::vector<Point2> local(all.begin() + lo, all.begin() + hi);
        const auto out = balancedKMeans<2>(comm, local, {}, seedCenters(k, 7), s);
        ASSERT_EQ(out.assignment.size(), local.size());
        for (const auto a : out.assignment) {
            EXPECT_GE(a, 0);
            EXPECT_LT(a, k);
        }
        EXPECT_LE(out.imbalance, s.epsilon + 1e-9);

        // Centers and influence are replicated bit-identically.
        auto flat = std::vector<double>();
        for (const auto& c : out.centers) {
            flat.push_back(c[0]);
            flat.push_back(c[1]);
        }
        flat.insert(flat.end(), out.influence.begin(), out.influence.end());
        auto maxv = flat, minv = flat;
        comm.allreduceMax(std::span<double>(maxv));
        comm.allreduceMin(std::span<double>(minv));
        for (std::size_t i = 0; i < flat.size(); ++i) EXPECT_EQ(maxv[i], minv[i]);
    });
}

TEST(BalancedKMeans, RespectsNodeWeights) {
    // Heavily weighted cluster of points in one corner: without balancing
    // by weight, one block would be overloaded.
    Xoshiro256 rng(11);
    std::vector<Point2> pts;
    std::vector<double> w;
    for (int i = 0; i < 2000; ++i) {
        const Point2 pt{{rng.uniform(), rng.uniform()}};
        pts.push_back(pt);
        // Weight gradient: left half much heavier.
        w.push_back(pt[0] < 0.5 ? 9.0 : 1.0);
    }
    Settings s;
    s.epsilon = 0.05;
    s.maxIterations = 80;
    runSpmd(1, [&](Comm& comm) {
        const auto out = balancedKMeans<2>(comm, pts, w, seedCenters(5, 13), s);
        EXPECT_LE(globalImbalance(out.assignment, 5, w), s.epsilon + 1e-9);
    });
}

TEST(BalancedKMeans, UnbalancedPlainLloydWouldFail) {
    // Two dense clusters + sparse background; plain k-means with k=4 would
    // give wildly unequal blocks. Balanced version must not.
    Xoshiro256 rng(17);
    std::vector<Point2> pts;
    for (int i = 0; i < 1800; ++i)
        pts.push_back(Point2{{0.1 + 0.05 * rng.uniform(), 0.1 + 0.05 * rng.uniform()}});
    for (int i = 0; i < 1800; ++i)
        pts.push_back(Point2{{0.9 - 0.05 * rng.uniform(), 0.9 - 0.05 * rng.uniform()}});
    for (int i = 0; i < 400; ++i) pts.push_back(Point2{{rng.uniform(), rng.uniform()}});
    Settings s;
    s.epsilon = 0.05;
    s.maxIterations = 100;
    runSpmd(1, [&](Comm& comm) {
        const auto out = balancedKMeans<2>(comm, pts, {}, seedCenters(4, 23), s);
        EXPECT_LE(out.imbalance, s.epsilon + 1e-9);
    });
}

TEST(BalancedKMeans, InfluenceDeviatesFromOneUnderImbalance) {
    Xoshiro256 rng(19);
    std::vector<Point2> pts;
    for (int i = 0; i < 1500; ++i)
        pts.push_back(Point2{{0.2 * rng.uniform(), rng.uniform()}});  // dense strip
    for (int i = 0; i < 500; ++i)
        pts.push_back(Point2{{0.2 + 0.8 * rng.uniform(), rng.uniform()}});
    Settings s;
    runSpmd(1, [&](Comm& comm) {
        const auto out = balancedKMeans<2>(comm, pts, {}, seedCenters(4, 29), s);
        double spread = 0.0;
        for (const double inf : out.influence) spread = std::max(spread, std::abs(inf - 1.0));
        EXPECT_GT(spread, 0.001);  // balancing actually used influence
        for (const double inf : out.influence) EXPECT_GT(inf, 0.0);
    });
}

TEST(BalancedKMeans, HamerlyBoundsDoNotChangeResult) {
    const auto pts = uniformPoints(2500, 31);
    Settings withBounds, without;
    withBounds.hamerlyBounds = true;
    without.hamerlyBounds = false;
    withBounds.sampledInitialization = without.sampledInitialization = false;
    std::vector<std::int32_t> a, b;
    runSpmd(1, [&](Comm& comm) {
        a = balancedKMeans<2>(comm, pts, {}, seedCenters(6, 37), withBounds).assignment;
    });
    runSpmd(1, [&](Comm& comm) {
        b = balancedKMeans<2>(comm, pts, {}, seedCenters(6, 37), without).assignment;
    });
    EXPECT_EQ(a, b);
}

TEST(BalancedKMeans, BboxPruningDoesNotChangeResult) {
    const auto pts = uniformPoints(2500, 41);
    Settings withPruning, without;
    withPruning.boundingBoxPruning = true;
    without.boundingBoxPruning = false;
    withPruning.sampledInitialization = without.sampledInitialization = false;
    std::vector<std::int32_t> a, b;
    runSpmd(1, [&](Comm& comm) {
        a = balancedKMeans<2>(comm, pts, {}, seedCenters(9, 43), withPruning).assignment;
    });
    runSpmd(1, [&](Comm& comm) {
        b = balancedKMeans<2>(comm, pts, {}, seedCenters(9, 43), without).assignment;
    });
    EXPECT_EQ(a, b);
}

TEST(BalancedKMeans, BoundsSkipSubstantialWorkInLaterPhases) {
    const auto pts = uniformPoints(6000, 47);
    Settings s;
    s.sampledInitialization = false;
    runSpmd(1, [&](Comm& comm) {
        const auto out = balancedKMeans<2>(comm, pts, {}, seedCenters(12, 53), s);
        // The paper reports ~80% skip rate; require a healthy majority.
        EXPECT_GT(out.counters.skipFraction(), 0.4);
        EXPECT_GT(out.counters.boundSkips, 0u);
        // Pruning must have saved distance calcs vs the naive k*n per sweep.
        const auto naive = static_cast<std::uint64_t>(out.counters.balanceIterations) *
                           static_cast<std::uint64_t>(pts.size()) * 12u;
        EXPECT_LT(out.counters.distanceCalcs, naive);
    });
}

TEST(BalancedKMeans, SampledInitMatchesQualityOfFullInit) {
    const auto pts = uniformPoints(4000, 59);
    auto sumSquares = [&](const KMeansOutcome<2>& out) {
        double ss = 0.0;
        for (std::size_t i = 0; i < pts.size(); ++i)
            ss += squaredDistance(pts[i], out.centers[static_cast<std::size_t>(
                                              out.assignment[i])]);
        return ss;
    };
    Settings sampled, full;
    sampled.sampledInitialization = true;
    full.sampledInitialization = false;
    double ssSampled = 0.0, ssFull = 0.0;
    runSpmd(1, [&](Comm& comm) {
        ssSampled = sumSquares(balancedKMeans<2>(comm, pts, {}, seedCenters(8, 61), sampled));
    });
    runSpmd(1, [&](Comm& comm) {
        ssFull = sumSquares(balancedKMeans<2>(comm, pts, {}, seedCenters(8, 61), full));
    });
    // "Starting with only a randomly sampled subset ... does not impact the
    // quality noticeably" — allow 25% slack.
    EXPECT_LT(ssSampled, ssFull * 1.25);
}

TEST(BalancedKMeans, WorksIn3d) {
    Xoshiro256 rng(67);
    std::vector<Point3> pts;
    for (int i = 0; i < 3000; ++i)
        pts.push_back(Point3{{rng.uniform(), rng.uniform(), rng.uniform()}});
    std::vector<Point3> centers;
    for (int i = 0; i < 5; ++i)
        centers.push_back(Point3{{rng.uniform(), rng.uniform(), rng.uniform()}});
    Settings s;
    runSpmd(2, [&](Comm& comm) {
        const auto n = static_cast<std::int64_t>(pts.size());
        const std::int64_t lo = n * comm.rank() / 2, hi = n * (comm.rank() + 1) / 2;
        std::vector<Point3> local(pts.begin() + lo, pts.begin() + hi);
        const auto out = balancedKMeans<3>(comm, local, {}, centers, s);
        EXPECT_LE(out.imbalance, s.epsilon + 1e-9);
    });
}

TEST(BalancedKMeans, SingleClusterTrivia) {
    const auto pts = uniformPoints(100, 71);
    Settings s;
    runSpmd(1, [&](Comm& comm) {
        const auto out = balancedKMeans<2>(comm, pts, {}, {Point2{{0.5, 0.5}}}, s);
        for (const auto a : out.assignment) EXPECT_EQ(a, 0);
        EXPECT_LE(out.imbalance, 1e-9);
    });
}

TEST(BalancedKMeans, RejectsMismatchedWeights) {
    const auto pts = uniformPoints(10, 73);
    const std::vector<double> wrong(3, 1.0);
    Settings s;
    runSpmd(1, [&](Comm& comm) {
        EXPECT_THROW(
            (void)balancedKMeans<2>(comm, pts, wrong, seedCenters(2, 79), s),
            std::invalid_argument);
    });
}

TEST(HeterogeneousTargets, NonUniformBlockSizesAreHonored) {
    // Paper footnote 1: non-uniform target sizes for heterogeneous
    // architectures. Ask for a 60/25/15 split.
    const auto pts = uniformPoints(4000, 53);
    Settings s;
    s.targetFractions = {0.6, 0.25, 0.15};
    s.epsilon = 0.05;
    s.maxIterations = 80;
    runSpmd(1, [&](Comm& comm) {
        const auto out = balancedKMeans<2>(comm, pts, {}, seedCenters(3, 59), s);
        std::vector<double> sizes(3, 0.0);
        for (const auto a : out.assignment) sizes[static_cast<std::size_t>(a)] += 1.0;
        EXPECT_NEAR(sizes[0] / 4000.0, 0.60, 0.05);
        EXPECT_NEAR(sizes[1] / 4000.0, 0.25, 0.04);
        EXPECT_NEAR(sizes[2] / 4000.0, 0.15, 0.03);
    });
}

TEST(HeterogeneousTargets, UnnormalizedFractionsAreNormalized) {
    // Fractions are relative shares, not probabilities: {12, 5, 3} must
    // behave exactly like {0.6, 0.25, 0.15}.
    const auto pts = uniformPoints(4000, 53);
    Settings normalized, scaled;
    normalized.targetFractions = {0.6, 0.25, 0.15};
    scaled.targetFractions = {12.0, 5.0, 3.0};
    normalized.epsilon = scaled.epsilon = 0.05;
    normalized.maxIterations = scaled.maxIterations = 80;
    std::vector<std::int32_t> a, b;
    double imbA = 0.0, imbB = 0.0;
    runSpmd(1, [&](Comm& comm) {
        const auto out = balancedKMeans<2>(comm, pts, {}, seedCenters(3, 59), normalized);
        a = out.assignment;
        imbA = out.imbalance;
    });
    runSpmd(1, [&](Comm& comm) {
        const auto out = balancedKMeans<2>(comm, pts, {}, seedCenters(3, 59), scaled);
        b = out.assignment;
        imbB = out.imbalance;
    });
    EXPECT_EQ(a, b);
    EXPECT_DOUBLE_EQ(imbA, imbB);
    EXPECT_LE(imbA, 0.05 + 1e-9);
}

TEST(HeterogeneousTargets, RejectsBadFractions) {
    const auto pts = uniformPoints(100, 61);
    const std::vector<Point2> centers{Point2{{0.2, 0.2}}, Point2{{0.8, 0.8}}};
    Settings s;
    s.targetFractions = {0.5};  // wrong arity
    runSpmd(1, [&](Comm& comm) {
        EXPECT_THROW((void)balancedKMeans<2>(comm, pts, {}, centers, s),
                     std::invalid_argument);
    });
    s.targetFractions = {0.5, -0.5};
    runSpmd(1, [&](Comm& comm) {
        EXPECT_THROW((void)balancedKMeans<2>(comm, pts, {}, centers, s),
                     std::invalid_argument);
    });
}

// ---------------------------------------------------------------------------
// Assignment-engine equivalence suite.
//
// `seedKMeans` below is a line-for-line compact copy of the seed
// implementation of balancedKMeans (scalar sqrt-domain candidate loop, eager
// O(n) Hamerly bound relaxation sweeps, flat size accumulation) — the oracle
// the fast engine (squared-distance kernels, lazy epoch bounds, SoA batching,
// threading) must reproduce *exactly*: same assignment, bitwise-equal
// centers, influence and imbalance.
// ---------------------------------------------------------------------------

template <int D>
struct SeedOutcome {
    std::vector<std::int32_t> assignment;
    std::vector<geo::Point<D>> centers;
    std::vector<double> influence;
    double imbalance = 0.0;
};

template <int D>
SeedOutcome<D> seedKMeans(Comm& comm, std::span<const geo::Point<D>> points,
                          std::span<const double> weights,
                          std::vector<geo::Point<D>> centers, const Settings& s) {
    constexpr double kInf = std::numeric_limits<double>::infinity();
    const auto k = static_cast<std::int32_t>(centers.size());
    const std::size_t n = points.size();
    std::vector<double> targetShare;
    if (s.targetFractions.empty()) {
        targetShare.assign(static_cast<std::size_t>(k), 1.0 / k);
    } else {
        double sum = 0.0;
        for (const double f : s.targetFractions) sum += f;
        for (const double f : s.targetFractions) targetShare.push_back(f / sum);
    }
    std::vector<double> influence = s.initialInfluence.empty()
                                        ? std::vector<double>(static_cast<std::size_t>(k), 1.0)
                                        : s.initialInfluence;
    std::vector<std::int32_t> assignment(n, -1);
    std::vector<double> ub(n, kInf), lb(n, 0.0);
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::size_t sampleSize = n;
    if (s.sampledInitialization) {
        Xoshiro256 rng(s.seed ^
                       (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(comm.rank() + 1)));
        for (std::size_t i = n; i > 1; --i) std::swap(order[i - 1], order[rng.below(i)]);
        sampleSize = std::min<std::size_t>(
            static_cast<std::size_t>(std::max(1, s.initialSampleSize)), n);
    }
    auto bb = geo::Box<D>::around(points);
    std::array<double, 2 * D> lohi;
    for (int i = 0; i < D; ++i) {
        lohi[static_cast<std::size_t>(i)] = bb.valid() ? bb.lo[i] : kInf;
        lohi[static_cast<std::size_t>(D + i)] = bb.valid() ? -bb.hi[i] : kInf;
    }
    comm.allreduceMin(std::span<double>(lohi.data(), lohi.size()));
    geo::Box<D> globalBox;
    for (int i = 0; i < D; ++i) {
        globalBox.lo[i] = lohi[static_cast<std::size_t>(i)];
        globalBox.hi[i] = -lohi[static_cast<std::size_t>(D + i)];
    }
    const double clusterScale =
        geo::core::expectedClusterRadius(globalBox.diagonal(), k, D);
    const double deltaThreshold = s.deltaThresholdFactor * clusterScale;
    const auto weightOf = [&](std::size_t p) {
        return weights.empty() ? 1.0 : weights[p];
    };

    std::vector<std::int32_t> sortedCenters;
    std::vector<double> centerKey;
    const auto assignPoint = [&](std::size_t p) {
        double best = kInf, second = kInf;
        std::int32_t bestC = -1;
        for (std::size_t ci = 0; ci < sortedCenters.size(); ++ci) {
            const std::int32_t c = sortedCenters[ci];
            if (s.boundingBoxPruning && centerKey.size() == sortedCenters.size() &&
                centerKey[static_cast<std::size_t>(c)] > second)
                break;
            const double eDist = distance(points[p], centers[static_cast<std::size_t>(c)]) /
                                 influence[static_cast<std::size_t>(c)];
            if (eDist < best) {
                second = best;
                best = eDist;
                bestC = c;
            } else if (eDist < second) {
                second = eDist;
            }
        }
        assignment[p] = bestC;
        ub[p] = best;
        lb[p] = second;
    };
    const auto imbalanceOf = [&](std::span<const double> sizes) {
        const double total = std::accumulate(sizes.begin(), sizes.end(), 0.0);
        if (total <= 0.0) return 0.0;
        double worst = 0.0;
        for (std::int32_t c = 0; c < k; ++c) {
            const double target = s.targetFractions.empty()
                                      ? std::ceil(total / k)
                                      : targetShare[static_cast<std::size_t>(c)] * total;
            worst = std::max(worst, sizes[static_cast<std::size_t>(c)] /
                                        std::max(target, 1e-300));
        }
        return worst - 1.0;
    };
    const auto assignAndBalance = [&]() {
        auto active = geo::Box<D>::empty();
        for (std::size_t oi = 0; oi < sampleSize; ++oi) active.extend(points[order[oi]]);
        double imb = kInf;
        for (int round = 0; round < s.maxBalanceIterations; ++round) {
            sortedCenters.resize(static_cast<std::size_t>(k));
            std::iota(sortedCenters.begin(), sortedCenters.end(), 0);
            if (s.boundingBoxPruning && active.valid()) {
                centerKey.resize(static_cast<std::size_t>(k));
                for (std::int32_t c = 0; c < k; ++c)
                    centerKey[static_cast<std::size_t>(c)] =
                        active.minDistance(centers[static_cast<std::size_t>(c)]) /
                        influence[static_cast<std::size_t>(c)];
                std::sort(sortedCenters.begin(), sortedCenters.end(),
                          [&](std::int32_t a, std::int32_t b) {
                              return centerKey[static_cast<std::size_t>(a)] <
                                     centerKey[static_cast<std::size_t>(b)];
                          });
            }
            std::vector<double> localSizes(static_cast<std::size_t>(k), 0.0);
            for (std::size_t oi = 0; oi < sampleSize; ++oi) {
                const std::size_t p = order[oi];
                if (!(s.hamerlyBounds && assignment[p] >= 0 && ub[p] < lb[p]))
                    assignPoint(p);
                localSizes[static_cast<std::size_t>(assignment[p])] += weightOf(p);
            }
            comm.allreduceSum(std::span<double>(localSizes));
            imb = imbalanceOf(localSizes);
            if (imb <= s.epsilon) return imb;
            // Influence adaptation + eager bound relaxation for influence.
            const double total =
                std::accumulate(localSizes.begin(), localSizes.end(), 0.0);
            std::vector<double> ratio(static_cast<std::size_t>(k), 1.0);
            for (std::int32_t c = 0; c < k; ++c) {
                const double target = targetShare[static_cast<std::size_t>(c)] * total;
                const double size = localSizes[static_cast<std::size_t>(c)];
                const double factor =
                    size <= 0.0 ? 1.0 + s.influenceChangeCap
                                : std::clamp(std::pow(target / size, 1.0 / D),
                                             1.0 - s.influenceChangeCap,
                                             1.0 + s.influenceChangeCap);
                const double before = influence[static_cast<std::size_t>(c)];
                influence[static_cast<std::size_t>(c)] = before * factor;
                ratio[static_cast<std::size_t>(c)] =
                    before / influence[static_cast<std::size_t>(c)];
            }
            if (s.hamerlyBounds) {
                const double minRatio = *std::min_element(ratio.begin(), ratio.end());
                for (std::size_t p = 0; p < n; ++p) {
                    if (assignment[p] < 0) continue;
                    ub[p] *= ratio[static_cast<std::size_t>(assignment[p])];
                    lb[p] *= minRatio;
                }
            }
        }
        return imb;
    };

    double imbalanceNow = kInf;
    bool converged = false;
    for (int iter = 0; iter < s.maxIterations; ++iter) {
        imbalanceNow = assignAndBalance();
        // Center sums in the engine's deterministic association: per-cluster
        // partials over fixed 1024-slot blocks of the (permuted) active
        // order, added in ascending block order — the same association
        // AssignEngine::updateCenters uses at every thread count. The value
        // is the same weighted mean; only the floating-point grouping is
        // pinned so the equivalence below can stay bitwise.
        const std::size_t stride = static_cast<std::size_t>(k) * (D + 1);
        std::vector<double> sums(stride, 0.0);
        std::vector<double> blockSum(stride);
        for (std::size_t b0 = 0; b0 < sampleSize; b0 += 1024) {
            std::fill(blockSum.begin(), blockSum.end(), 0.0);
            const std::size_t b1 = std::min(sampleSize, b0 + 1024);
            for (std::size_t oi = b0; oi < b1; ++oi) {
                const std::size_t p = order[oi];
                const auto c = static_cast<std::size_t>(assignment[p]);
                for (int d = 0; d < D; ++d)
                    blockSum[c * (D + 1) + static_cast<std::size_t>(d)] +=
                        weightOf(p) * points[p][d];
                blockSum[c * (D + 1) + D] += weightOf(p);
            }
            for (std::size_t i = 0; i < stride; ++i) sums[i] += blockSum[i];
        }
        comm.allreduceSum(std::span<double>(sums));
        auto freshCenters = centers;
        std::vector<double> delta(static_cast<std::size_t>(k), 0.0);
        double maxDelta = 0.0;
        for (std::int32_t c = 0; c < k; ++c) {
            const auto base = static_cast<std::size_t>(c) * (D + 1);
            if (sums[base + D] <= 0.0) continue;
            geo::Point<D> fresh;
            for (int d = 0; d < D; ++d)
                fresh[d] = sums[base + static_cast<std::size_t>(d)] / sums[base + D];
            delta[static_cast<std::size_t>(c)] =
                distance(fresh, centers[static_cast<std::size_t>(c)]);
            maxDelta = std::max(maxDelta, delta[static_cast<std::size_t>(c)]);
            freshCenters[static_cast<std::size_t>(c)] = fresh;
        }
        const bool sampleComplete =
            comm.allreduceMin<std::uint64_t>(sampleSize >= n ? 1 : 0) == 1;
        if (sampleComplete && maxDelta < deltaThreshold) {
            converged = true;
            break;
        }
        centers = std::move(freshCenters);
        std::vector<double> influenceBefore = influence;
        if (s.influenceErosion) {
            const double beta = std::max(clusterScale, 1e-300);
            for (std::int32_t c = 0; c < k; ++c) {
                const double x = delta[static_cast<std::size_t>(c)] / beta;
                const double alpha = 2.0 / (1.0 + std::exp(-x)) - 1.0;
                auto& inf = influence[static_cast<std::size_t>(c)];
                inf = std::exp((1.0 - alpha) * std::log(inf));
            }
        }
        if (s.hamerlyBounds) {
            double minRatio = kInf, maxShift = 0.0;
            std::vector<double> ratio(static_cast<std::size_t>(k));
            for (std::int32_t c = 0; c < k; ++c) {
                const double r = influenceBefore[static_cast<std::size_t>(c)] /
                                 influence[static_cast<std::size_t>(c)];
                ratio[static_cast<std::size_t>(c)] = r;
                minRatio = std::min(minRatio, r);
                maxShift = std::max(maxShift, delta[static_cast<std::size_t>(c)] /
                                                  influence[static_cast<std::size_t>(c)]);
            }
            for (std::size_t p = 0; p < n; ++p) {
                if (assignment[p] < 0) continue;
                const auto c = static_cast<std::size_t>(assignment[p]);
                ub[p] = ub[p] * ratio[c] + delta[c] / influence[c];
                lb[p] = std::max(0.0, lb[p] * minRatio - maxShift);
            }
        }
        if (sampleSize < n) sampleSize = std::min(n, sampleSize * 2);
    }
    if (sampleSize < n) {
        sampleSize = n;
        std::fill(ub.begin(), ub.end(), kInf);
        std::fill(lb.begin(), lb.end(), 0.0);
        imbalanceNow = assignAndBalance();
    } else if (!converged) {
        imbalanceNow = assignAndBalance();
    }
    return {std::move(assignment), std::move(centers), std::move(influence), imbalanceNow};
}

template <int D>
void expectExactlyEqual(const KMeansOutcome<D>& got, const SeedOutcome<D>& want,
                        const std::string& label) {
    EXPECT_EQ(got.assignment, want.assignment) << label;
    ASSERT_EQ(got.centers.size(), want.centers.size()) << label;
    for (std::size_t c = 0; c < want.centers.size(); ++c)
        for (int d = 0; d < D; ++d)
            EXPECT_EQ(got.centers[c][d], want.centers[c][d]) << label << " center " << c;
    EXPECT_EQ(got.influence, want.influence) << label;
    EXPECT_EQ(got.imbalance, want.imbalance) << label;
}

/// Run the seed oracle and the engine in every mode/thread combination on
/// one configuration; everything must agree exactly.
template <int D>
void runEquivalence(const std::vector<geo::Point<D>>& pts,
                    const std::vector<double>& weights,
                    const std::vector<geo::Point<D>>& centers, Settings s,
                    int ranks, const std::string& label) {
    SeedOutcome<D> want;
    runSpmd(ranks, [&](Comm& comm) {
        const auto [lo, hi] =
            geo::par::blockRange(static_cast<std::int64_t>(pts.size()), comm.rank(), ranks);
        std::vector<geo::Point<D>> local(pts.begin() + lo, pts.begin() + hi);
        std::vector<double> localW;
        if (!weights.empty()) localW.assign(weights.begin() + lo, weights.begin() + hi);
        auto mine = seedKMeans<D>(comm, local, localW, centers, s);
        mine.assignment = comm.allgatherv(std::span<const std::int32_t>(mine.assignment));
        if (comm.isRoot()) want = std::move(mine);
    });

    struct Config {
        bool reference;
        int threads;
    };
    for (const Config cfg : {Config{true, 1}, Config{false, 1}, Config{false, 2},
                             Config{false, 4}}) {
        Settings engine = s;
        engine.referenceAssignment = cfg.reference;
        engine.threads = cfg.threads;
        runSpmd(ranks, [&](Comm& comm) {
            const auto [lo, hi] = geo::par::blockRange(
                static_cast<std::int64_t>(pts.size()), comm.rank(), ranks);
            std::vector<geo::Point<D>> local(pts.begin() + lo, pts.begin() + hi);
            std::vector<double> localW;
            if (!weights.empty())
                localW.assign(weights.begin() + lo, weights.begin() + hi);
            auto got = balancedKMeans<D>(comm, local, localW, centers, engine);
            got.assignment = comm.allgatherv(std::span<const std::int32_t>(got.assignment));
            if (comm.isRoot())
                expectExactlyEqual<D>(got, want,
                                      label + (cfg.reference ? " [reference" : " [fast") +
                                          " t" + std::to_string(cfg.threads) + "]");
        });
    }
}

TEST(AssignEngineEquivalence, Uniform2dSampled) {
    runEquivalence<2>(uniformPoints(3000, 101), {}, seedCenters(8, 103), Settings{}, 1,
                      "uniform2d-sampled");
}

TEST(AssignEngineEquivalence, Uniform2dFullInit) {
    Settings s;
    s.sampledInitialization = false;
    runEquivalence<2>(uniformPoints(3000, 107), {}, seedCenters(8, 109), s, 1,
                      "uniform2d-full");
}

TEST(AssignEngineEquivalence, Weighted2d) {
    // Integer weights: every partial sum is exact, so even the block-wise
    // size accumulation of the engine matches the seed's flat sums bitwise.
    const auto pts = uniformPoints(2500, 113);
    std::vector<double> w;
    for (std::size_t i = 0; i < pts.size(); ++i) w.push_back(pts[i][0] < 0.4 ? 7.0 : 1.0);
    Settings s;
    s.maxIterations = 60;
    runEquivalence<2>(pts, w, seedCenters(6, 127), s, 1, "weighted2d");
}

TEST(AssignEngineEquivalence, WarmStartInfluence2d) {
    Settings s;
    s.sampledInitialization = false;  // the repart warm path disables sampling
    s.initialInfluence = {1.25, 0.8, 1.0, 0.95, 1.1};
    runEquivalence<2>(uniformPoints(2500, 131), {}, seedCenters(5, 137), s, 1,
                      "warm-start2d");
}

TEST(AssignEngineEquivalence, TargetFractions2d) {
    Settings s;
    s.targetFractions = {0.6, 0.25, 0.15};
    s.epsilon = 0.05;
    s.maxIterations = 80;
    runEquivalence<2>(uniformPoints(2500, 139), {}, seedCenters(3, 149), s, 1,
                      "fractions2d");
}

TEST(AssignEngineEquivalence, Uniform3dMultiRank) {
    Xoshiro256 rng(151);
    std::vector<Point3> pts;
    for (int i = 0; i < 3000; ++i)
        pts.push_back(Point3{{rng.uniform(), rng.uniform(), rng.uniform()}});
    std::vector<Point3> centers;
    for (int i = 0; i < 6; ++i)
        centers.push_back(Point3{{rng.uniform(), rng.uniform(), rng.uniform()}});
    runEquivalence<3>(pts, {}, centers, Settings{}, 2, "uniform3d-2ranks");
}

TEST(AssignEngineEquivalence, NoBoundsNoPruning2d) {
    Settings s;
    s.hamerlyBounds = false;
    s.boundingBoxPruning = false;
    s.sampledInitialization = false;
    runEquivalence<2>(uniformPoints(2000, 157), {}, seedCenters(7, 163), s, 1,
                      "nobounds2d");
}

TEST(BalancedKMeans, DeterministicAcrossRuns) {
    const auto pts = uniformPoints(1500, 83);
    Settings s;
    std::vector<std::int32_t> first;
    for (int trial = 0; trial < 2; ++trial) {
        runSpmd(3, [&](Comm& comm) {
            const auto n = static_cast<std::int64_t>(pts.size());
            const std::int64_t lo = n * comm.rank() / 3, hi = n * (comm.rank() + 1) / 3;
            std::vector<Point2> local(pts.begin() + lo, pts.begin() + hi);
            const auto out = balancedKMeans<2>(comm, local, {}, seedCenters(4, 89), s);
            const auto mine = comm.allgatherv(std::span<const std::int32_t>(out.assignment));
            if (comm.isRoot()) {
                if (trial == 0)
                    first = mine;
                else
                    EXPECT_EQ(first, mine);
            }
        });
    }
}

}  // namespace
