// Fault-tolerance / chaos suite for the distributed runtime.
//
// Like test_transport, the binary is dual-purpose: with no --worker flag it
// is a normal gtest binary (fault-spec parsing, CRC, checkpoint codec,
// router degradation units, plus the multi-process chaos legs below); with
// a --worker flag it is the rank body those legs re-exec.
//
// The chaos legs deliberately do NOT go through geo_launch for the
// survivor-side assertions: the launcher's job is to tear survivors down on
// first failure, which would race the very typed TransportError the tests
// must observe. A mini-launcher here (runMesh) forks the socket mesh
// directly, injects GEO_FAULT into one rank, and asserts every survivor
// exits with the worker exit-code convention
//
//     42 + static_cast<int>(TransportError::kind)
//
// i.e. 42 = Timeout, 43 = PeerClosed, 44 = ConnectFailed, 45 = Protocol —
// and never a SIGPIPE/hang (the pre-fault-tolerance failure modes).
// geo_launch itself is exercised end-to-end for teardown and --restart
// recovery, and the checkpoint/resume leg proves a killed-and-resumed
// timeline reproduces the uninterrupted run bitwise.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/geographer.hpp"
#include "core/settings.hpp"
#include "par/comm.hpp"
#include "par/transport/transport.hpp"
#include "repart/repartition.hpp"
#include "repart/scenarios.hpp"
#include "serve/router.hpp"
#include "serve/snapshot.hpp"
#include "support/binio.hpp"
#include "support/crc32.hpp"
#include "support/fault.hpp"

#ifndef GEO_LAUNCH_PATH
#error "GEO_LAUNCH_PATH must be defined to the geo_launch binary path"
#endif

namespace {

using geo::par::Comm;
using geo::par::TransportError;
using geo::par::TransportErrorKind;
using geo::support::FaultSpec;

/// Worker exit-code convention: typed transport failures map to 42 + kind
/// so the parent can assert WHICH failure class a survivor saw.
constexpr int kExitTimeout = 42;
constexpr int kExitPeerClosed = 43;
constexpr int kExitConnectFailed = 44;

// ---------------------------------------------------------------- helpers

std::string selfExe() {
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0) return {};
    buf[n] = '\0';
    return std::string(buf);
}

int decodeStatus(int status) {
    if (WIFEXITED(status)) return WEXITSTATUS(status);
    if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
    return 255;
}

/// Run a shell command (inheriting this process's environment); returns the
/// exit code, 128+signal on abnormal termination.
int runCmd(const std::string& cmd) {
    const int rc = std::system(cmd.c_str());
    return rc == -1 ? -1 : decodeStatus(rc);
}

int runLaunch(const std::string& tail) {
    return runCmd(std::string(GEO_LAUNCH_PATH) + " " + tail);
}

double nowSeconds() {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/// Set an environment variable for the current scope; the suite scrubs all
/// GEO_* worker variables at startup, so restoring means unsetting.
struct ScopedEnv {
    std::string key;
    ScopedEnv(const char* k, const std::string& value) : key(k) {
        ::setenv(k, value.c_str(), 1);
    }
    ~ScopedEnv() { ::unsetenv(key.c_str()); }
    ScopedEnv(const ScopedEnv&) = delete;
    ScopedEnv& operator=(const ScopedEnv&) = delete;
};

// ------------------------------------------------------- mini-launcher

struct MeshRun {
    std::vector<int> status;  ///< per spawned rank, decodeStatus encoding
    double elapsedSeconds = 0.0;
};

/// Fork `spawn` ranks of a `mesh`-sized socket mesh running
/// `--worker=<worker>`, with `extraEnv` (e.g. GEO_FAULT) in every rank's
/// environment. Unlike geo_launch this NEVER tears survivors down on first
/// failure — the point is to observe what the survivors do on their own.
/// Once `reapAfterExits` ranks have exited (or `deadlineSeconds` passes)
/// the stragglers are SIGKILLed, which is how the wedged-peer (drop) rank
/// gets reaped.
MeshRun runMesh(const std::string& worker, int spawn, int mesh,
                const std::vector<std::pair<std::string, std::string>>& extraEnv,
                double deadlineSeconds, int reapAfterExits = -1) {
    char dirTemplate[] = "/tmp/geo_fault_mesh_XXXXXX";
    const char* dir = ::mkdtemp(dirTemplate);
    MeshRun run;
    run.status.assign(static_cast<std::size_t>(spawn), -1);
    if (dir == nullptr) return run;

    const std::string exe = selfExe();
    const std::string workerArg = "--worker=" + worker;
    std::vector<pid_t> pids(static_cast<std::size_t>(spawn), -1);
    for (int r = 0; r < spawn; ++r) {
        const pid_t pid = ::fork();
        if (pid == 0) {
            ::setenv("GEO_RANK", std::to_string(r).c_str(), 1);
            ::setenv("GEO_RANKS", std::to_string(mesh).c_str(), 1);
            ::setenv("GEO_TRANSPORT", "socket", 1);
            ::setenv("GEO_SOCKET_DIR", dir, 1);
            for (const auto& [key, value] : extraEnv)
                ::setenv(key.c_str(), value.c_str(), 1);
            ::execl(exe.c_str(), exe.c_str(), workerArg.c_str(),
                    static_cast<char*>(nullptr));
            ::_exit(127);
        }
        pids[static_cast<std::size_t>(r)] = pid;
    }

    const double start = nowSeconds();
    int exited = 0;
    while (exited < spawn) {
        const double elapsed = nowSeconds() - start;
        const bool reap = elapsed > deadlineSeconds ||
                          (reapAfterExits >= 0 && exited >= reapAfterExits);
        for (int r = 0; r < spawn; ++r) {
            auto& slot = run.status[static_cast<std::size_t>(r)];
            if (slot != -1) continue;
            if (reap) ::kill(pids[static_cast<std::size_t>(r)], SIGKILL);
            int st = 0;
            if (::waitpid(pids[static_cast<std::size_t>(r)], &st,
                          reap ? 0 : WNOHANG) == pids[static_cast<std::size_t>(r)]) {
                slot = decodeStatus(st);
                ++exited;
            }
        }
        if (exited < spawn) ::usleep(20 * 1000);
    }
    run.elapsedSeconds = nowSeconds() - start;
    (void)std::system(("rm -rf " + std::string(dir)).c_str());
    return run;
}

// ------------------------------------------------- worker entry points

/// Socket-mesh worker: loop collectives until GEO_FAULT takes a rank out;
/// survivors translate the typed failure into 42+kind.
int chaosCollectiveWorkerMain(bool alltoall) {
    const int ranks = geo::par::defaultRanks();
    bool cross = false;
    try {
        geo::par::runSpmd(ranks, [&](Comm& comm) {
            cross = comm.crossProcess();
            if (alltoall) {
                // Big per-pair payloads so a mid-collective peer death can
                // also surface on the SEND side (EPIPE, the old SIGPIPE
                // crash) rather than only as a recv EOF.
                const int p = comm.size();
                std::vector<std::vector<std::uint8_t>> sendTo(
                    static_cast<std::size_t>(p));
                for (int q = 0; q < p; ++q)
                    sendTo[static_cast<std::size_t>(q)].assign(
                        std::size_t{1} << 18,
                        static_cast<std::uint8_t>(comm.rank() * 16 + q));
                for (int round = 0; round < 6; ++round)
                    (void)comm.alltoallv(sendTo);
            } else {
                for (int round = 0; round < 10; ++round)
                    (void)comm.allreduceSum(std::int64_t{1});
            }
        });
    } catch (const TransportError& e) {
        std::fprintf(stderr, "[chaos] rank %s: %s\n", std::getenv("GEO_RANK"),
                     e.what());
        return 42 + static_cast<int>(e.kind);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "[chaos] rank %s untyped: %s\n",
                     std::getenv("GEO_RANK"), e.what());
        return 2;
    }
    return cross ? 0 : 3;  // 3 = silent simulator fallback, test is vacuous
}

/// Handshake-only worker for the absent-rank leg: mesh construction itself
/// must fail typed, not hang.
int handshakeWorkerMain() {
    try {
        geo::par::runSpmd(geo::par::defaultRanks(),
                          [](Comm& comm) { comm.barrier(); });
    } catch (const TransportError& e) {
        std::fprintf(stderr, "[handshake] rank %s: %s\n",
                     std::getenv("GEO_RANK"), e.what());
        return 42 + static_cast<int>(e.kind);
    } catch (const std::exception&) {
        return 2;
    }
    return 0;
}

/// Application-level fault point then immediate success: the geo_launch
/// --restart legs pair this with a once=PATH fault.
int stepOnceWorkerMain() {
    geo::support::faultPoint("step", 0);
    return 0;
}

/// Fault point then a long sleep: proves geo_launch tears down survivors
/// after a rank death instead of waiting out the sleep.
int faultSleepWorkerMain() {
    geo::support::faultPoint("step", 0);
    ::sleep(60);
    return 0;
}

// ------------------------------------------------- timeline worker

/// Deterministic repartitioning timeline with per-step checkpoints: the
/// in-process (simulator) analogue of bench/repart_timeline's
/// --checkpoint/--resume path. Runs kTimelineSteps warm-started repartition
/// steps over an advection scenario, saving a checkpoint after every step
/// and running the application fault point faultPoint("step", t) before
/// each; at the end it dumps the final partition + warm state to `outPath`.
/// A run killed mid-timeline and resumed from its checkpoint must produce
/// a byte-identical dump.
constexpr int kTimelineSteps = 6;

geo::repart::RepartState<2> stateFromCheckpoint(const geo::core::CheckpointState& ck) {
    geo::repart::RepartState<2> state;
    state.centers = geo::core::unflattenCenters<2>(
        std::span<const double>(ck.centerCoords));
    state.influence = ck.influence;
    return state;
}

int timelineWorkerMain(const char* outPath, const char* ckptPath, bool resume) {
    try {
        geo::repart::ScenarioConfig cfg;
        cfg.kind = geo::repart::ScenarioKind::Advection;
        cfg.basePoints = 900;
        cfg.drift = 0.06;
        cfg.seed = 13;

        geo::core::Settings settings;
        settings.threads = 1;
        settings.transport = geo::par::TransportKind::Sim;
        const std::int32_t k = 6;
        const int ranks = 2;

        geo::repart::RepartState<2> state;
        int startStep = 0;
        if (resume) {
            const auto ck = geo::core::loadCheckpoint(ckptPath);
            if (ck.dims != 2) return 5;
            if (ck.step > 0) state = stateFromCheckpoint(ck);
            startStep = static_cast<int>(ck.step);
        }

        geo::repart::Scenario<2> scenario(cfg);
        for (int t = 0; t < startStep; ++t) scenario.advance();

        geo::core::GeographerResult last;
        for (int t = startStep; t < kTimelineSteps; ++t) {
            geo::support::faultPoint("step", static_cast<std::uint64_t>(t));
            auto res = geo::repart::repartitionGeographer<2>(
                std::span<const geo::Point2>(scenario.current().points),
                std::span<const double>(scenario.current().weights), k, ranks,
                settings, state);
            last = std::move(res.result);

            geo::core::CheckpointState ck;
            ck.dims = 2;
            ck.phase = 0;
            ck.step = static_cast<std::uint64_t>(t) + 1;
            ck.influence = state.influence;
            ck.centerCoords.reserve(state.centers.size() * 2);
            for (const auto& c : state.centers) {
                ck.centerCoords.push_back(c[0]);
                ck.centerCoords.push_back(c[1]);
            }
            geo::core::saveCheckpoint(ckptPath, ck);

            if (t + 1 < kTimelineSteps) scenario.advance();
        }

        geo::binio::Writer w;
        w.u64(last.partition.size());
        w.vec(last.partition);
        w.vec(last.centerCoords);
        w.vec(last.influence);
        w.f64(last.imbalance);
        const auto bytes = std::move(w).take();
        std::ofstream out(outPath, std::ios::binary | std::ios::trunc);
        out.write(reinterpret_cast<const char*>(bytes.data()),
                  static_cast<std::streamsize>(bytes.size()));
        if (!out.good()) return 4;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "[timeline] exception: %s\n", e.what());
        return 2;
    }
    return 0;
}

std::vector<std::byte> readFile(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in.good()) return {};
    return geo::binio::readAll(in, std::size_t{1} << 30);
}

// ------------------------------------------------- gtest: fault specs

TEST(FaultSpec, EmptyAndAbsentAreNoFault) {
    EXPECT_FALSE(geo::support::parseFaultSpec(nullptr).has_value());
    EXPECT_FALSE(geo::support::parseFaultSpec("").has_value());
}

TEST(FaultSpec, ParsesActionsAndSelectors) {
    const auto kill = geo::support::parseFaultSpec("kill");
    ASSERT_TRUE(kill.has_value());
    EXPECT_EQ(kill->action, FaultSpec::Action::Kill);
    EXPECT_EQ(kill->rank, -1);
    EXPECT_TRUE(kill->op.empty());
    EXPECT_EQ(kill->seq, FaultSpec::kAnySeq);
    EXPECT_TRUE(kill->onceMarker.empty());

    const auto exit = geo::support::parseFaultSpec("exit:code=7:rank=2");
    ASSERT_TRUE(exit.has_value());
    EXPECT_EQ(exit->action, FaultSpec::Action::Exit);
    EXPECT_EQ(exit->exitCode, 7);
    EXPECT_EQ(exit->rank, 2);

    const auto delay = geo::support::parseFaultSpec("delay:ms=250:op=allreduce");
    ASSERT_TRUE(delay.has_value());
    EXPECT_EQ(delay->action, FaultSpec::Action::Delay);
    EXPECT_EQ(delay->delayMs, 250);
    EXPECT_EQ(delay->op, "allreduce");

    const auto drop =
        geo::support::parseFaultSpec("drop:seq=9:once=/tmp/marker");
    ASSERT_TRUE(drop.has_value());
    EXPECT_EQ(drop->action, FaultSpec::Action::Drop);
    EXPECT_EQ(drop->seq, 9u);
    EXPECT_EQ(drop->onceMarker, "/tmp/marker");
}

TEST(FaultSpec, RejectsMalformedSpecsLoudly) {
    EXPECT_THROW((void)geo::support::parseFaultSpec("explode"),
                 std::invalid_argument);
    EXPECT_THROW((void)geo::support::parseFaultSpec("kill:widget=1"),
                 std::invalid_argument);
    EXPECT_THROW((void)geo::support::parseFaultSpec("kill:rank=two"),
                 std::invalid_argument);
    EXPECT_THROW((void)geo::support::parseFaultSpec("kill:rank"),
                 std::invalid_argument);
    EXPECT_THROW((void)geo::support::parseFaultSpec("exit:code="),
                 std::invalid_argument);
}

// ------------------------------------------------- gtest: typed errors

TEST(TransportErrorType, CarriesTypedContextInWhat) {
    const TransportError e(TransportErrorKind::PeerClosed, 2, "allreduce", 7,
                           "peer closed connection (EOF)");
    EXPECT_EQ(e.kind, TransportErrorKind::PeerClosed);
    EXPECT_EQ(e.peer, 2);
    EXPECT_EQ(e.op, "allreduce");
    EXPECT_EQ(e.seq, 7u);
    const std::string what = e.what();
    EXPECT_NE(what.find("allreduce"), std::string::npos);
    EXPECT_NE(what.find(geo::par::toString(e.kind)), std::string::npos);
    EXPECT_NE(what.find("peer=2"), std::string::npos);
    EXPECT_NE(what.find("EOF"), std::string::npos);
}

TEST(TransportErrorType, KindNamesAreDistinct) {
    EXPECT_STRNE(geo::par::toString(TransportErrorKind::Timeout),
                 geo::par::toString(TransportErrorKind::PeerClosed));
    EXPECT_STRNE(geo::par::toString(TransportErrorKind::ConnectFailed),
                 geo::par::toString(TransportErrorKind::Protocol));
}

TEST(TransportErrorType, CommTimeoutResolution) {
    ::unsetenv("GEO_COMM_TIMEOUT_MS");
    geo::core::Settings s;
    EXPECT_EQ(s.resolvedCommTimeoutMs(), 30000);  // built-in default
    {
        const ScopedEnv env("GEO_COMM_TIMEOUT_MS", "250");
        EXPECT_EQ(s.resolvedCommTimeoutMs(), 250);  // env wins over default
        s.commTimeoutMs = 1234;
        EXPECT_EQ(s.resolvedCommTimeoutMs(), 1234);  // explicit wins over env
        s.commTimeoutMs = 0;
        EXPECT_EQ(s.resolvedCommTimeoutMs(), 0);  // 0 = disabled, still explicit
    }
    {
        const ScopedEnv env("GEO_COMM_TIMEOUT_MS", "not-a-number");
        s.commTimeoutMs = -1;
        EXPECT_EQ(s.resolvedCommTimeoutMs(), 30000);  // garbage falls back
    }
    EXPECT_EQ(geo::par::defaultConnectTimeoutMs(), 30000);
}

// ------------------------------------------------- gtest: crc32

TEST(Crc32, KnownAnswers) {
    // The standard IEEE 802.3 check value (zlib-compatible).
    EXPECT_EQ(geo::support::crc32("123456789", 9), 0xCBF43926u);
    EXPECT_EQ(geo::support::crc32(nullptr, 0), 0u);
    // Sensitivity: one flipped bit changes the sum.
    const char a[] = "checkpoint";
    const char b[] = "checkpoin\x75";  // 't' ^ 0x01
    EXPECT_NE(geo::support::crc32(a, sizeof(a) - 1),
              geo::support::crc32(b, sizeof(b) - 1));
}

// ------------------------------------------------- gtest: checkpoint codec

geo::core::CheckpointState sampleCheckpoint() {
    geo::core::CheckpointState ck;
    ck.dims = 2;
    ck.phase = 3;
    ck.step = 17;
    ck.centerCoords = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6};
    ck.influence = {1.0, 0.75, 1.25};
    return ck;
}

/// Decode and return the failure message ("" = decoded fine).
std::string decodeError(std::vector<std::byte> bytes) {
    try {
        (void)geo::core::decodeCheckpoint(bytes);
    } catch (const std::invalid_argument& e) {
        return e.what();
    }
    return {};
}

TEST(Checkpoint, EncodeDecodeRoundTrip) {
    const auto ck = sampleCheckpoint();
    const auto decoded = geo::core::decodeCheckpoint(geo::core::encodeCheckpoint(ck));
    EXPECT_EQ(decoded.dims, ck.dims);
    EXPECT_EQ(decoded.phase, ck.phase);
    EXPECT_EQ(decoded.step, ck.step);
    EXPECT_EQ(decoded.centerCoords, ck.centerCoords);
    EXPECT_EQ(decoded.influence, ck.influence);
    EXPECT_EQ(decoded.k(), 3u);
}

TEST(Checkpoint, EncodeRejectsInconsistentState) {
    geo::core::CheckpointState bad = sampleCheckpoint();
    bad.dims = 0;
    EXPECT_THROW((void)geo::core::encodeCheckpoint(bad), std::invalid_argument);
    bad = sampleCheckpoint();
    bad.centerCoords.pop_back();  // no longer k * dims
    EXPECT_THROW((void)geo::core::encodeCheckpoint(bad), std::invalid_argument);
}

TEST(Checkpoint, DistinguishesCorruptionModes) {
    const auto good = geo::core::encodeCheckpoint(sampleCheckpoint());
    ASSERT_TRUE(decodeError(good).empty());

    // Not a checkpoint at all.
    auto badMagic = good;
    badMagic[0] ^= std::byte{0xFF};
    EXPECT_NE(decodeError(badMagic).find("magic"), std::string::npos);

    // Future format version.
    auto badVersion = good;
    badVersion[4] = std::byte{0x63};
    EXPECT_NE(decodeError(badVersion).find("version"), std::string::npos);

    // Torn writes: header-only and payload-short files.
    EXPECT_NE(decodeError({good.begin(), good.begin() + 8}).find("truncated"),
              std::string::npos);
    EXPECT_NE(decodeError({good.begin(), good.end() - 9}).find("truncated"),
              std::string::npos);

    // Bit rot in the payload must be a CRC failure, not a garbage decode.
    auto corrupt = good;
    corrupt[20] ^= std::byte{0x01};
    EXPECT_NE(decodeError(corrupt).find("CRC"), std::string::npos);

    // Trailing garbage after the CRC.
    auto trailing = good;
    trailing.push_back(std::byte{0});
    EXPECT_FALSE(decodeError(trailing).empty());
}

TEST(Checkpoint, SaveLoadRoundTripAndAtomicOverwrite) {
    const std::string path =
        "/tmp/geo_fault_ckpt_" + std::to_string(::getpid()) + ".ckpt";
    auto ck = sampleCheckpoint();
    geo::core::saveCheckpoint(path, ck);
    EXPECT_EQ(geo::core::loadCheckpoint(path).step, 17u);

    ck.step = 18;  // overwrite must atomically replace, not append/tear
    geo::core::saveCheckpoint(path, ck);
    const auto loaded = geo::core::loadCheckpoint(path);
    EXPECT_EQ(loaded.step, 18u);
    EXPECT_EQ(loaded.centerCoords, ck.centerCoords);
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
}

TEST(Checkpoint, MissingFileThrowsRuntimeError) {
    EXPECT_THROW((void)geo::core::loadCheckpoint("/tmp/geo_fault_no_such_ckpt"),
                 std::runtime_error);
}

// ------------------------------------------------- gtest: router degradation

TEST(RouterDegradation, TryPublishFailureKeepsServingLastEpoch) {
    using geo::serve::PartitionSnapshot;
    const std::vector<geo::Point2> centers{{0.1, 0.1}, {0.9, 0.9}};
    const std::vector<double> ones(2, 1.0);

    geo::serve::Router<2> router(1);
    EXPECT_FALSE(router.health().servable());  // nothing published yet

    EXPECT_TRUE(router.tryPublish([&] {
        return PartitionSnapshot<2>::fromCenters(centers, ones, 1);
    }));
    EXPECT_EQ(router.epoch(), 1u);
    const geo::Point2 probe{0.12, 0.11};
    EXPECT_EQ(router.route(probe), 0);

    // A failing publish is recorded but must not disturb serving.
    EXPECT_FALSE(router.tryPublish([]() -> PartitionSnapshot<2> {
        throw std::runtime_error("injected publish failure");
    }));
    EXPECT_EQ(router.epoch(), 1u);
    EXPECT_EQ(router.route(probe), 0);
    auto health = router.health();
    EXPECT_TRUE(health.servable());
    EXPECT_EQ(health.failedPublishes, 1u);
    EXPECT_EQ(health.consecutiveFailures, 1u);
    EXPECT_NE(health.lastPublishError.find("injected"), std::string::npos);
    EXPECT_GE(health.epochAgeSeconds, 0.0);

    EXPECT_FALSE(router.tryPublish([]() -> PartitionSnapshot<2> {
        throw std::runtime_error("still failing");
    }));
    EXPECT_EQ(router.health().consecutiveFailures, 2u);

    // Recovery clears the consecutive streak but keeps the total.
    EXPECT_TRUE(router.tryPublish([&] {
        return PartitionSnapshot<2>::fromCenters(centers, ones, 2);
    }));
    EXPECT_EQ(router.epoch(), 2u);
    health = router.health();
    EXPECT_EQ(health.failedPublishes, 2u);
    EXPECT_EQ(health.consecutiveFailures, 0u);
    EXPECT_TRUE(health.lastPublishError.empty());
}

TEST(RouterDegradation, PoisonIsTheOnlyWayServingStops) {
    using geo::serve::PartitionSnapshot;
    const std::vector<geo::Point2> centers{{0.5, 0.5}};
    const std::vector<double> ones(1, 1.0);
    geo::serve::Router<2> router(1);
    router.publish(PartitionSnapshot<2>::fromCenters(centers, ones, 1));
    const geo::Point2 probe{0.4, 0.4};
    EXPECT_EQ(router.route(probe), 0);

    router.poison("operator drained this replica");
    const auto health = router.health();
    EXPECT_TRUE(health.poisoned);
    EXPECT_FALSE(health.servable());
    EXPECT_EQ(health.poisonReason, "operator drained this replica");
    try {
        (void)router.route(probe);
        FAIL() << "poisoned router must not answer";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("operator drained"),
                  std::string::npos);
    }
    std::vector<std::int32_t> blocks(1);
    EXPECT_THROW(router.route(std::span<const geo::Point2>(&probe, 1),
                              std::span<std::int32_t>(blocks)),
                 std::runtime_error);
    EXPECT_THROW((void)router.routeRank(probe), std::runtime_error);
}

// ------------------------------------------------- gtest: chaos meshes

TEST(Chaos, KillMidAllreduceSurvivorsSeePeerClosed) {
    const auto run = runMesh("chaos-allreduce", 3, 3,
                             {{"GEO_FAULT", "kill:rank=1:op=allreduce"}},
                             /*deadlineSeconds=*/60.0);
    EXPECT_EQ(run.status[1], 128 + SIGKILL);
    EXPECT_EQ(run.status[0], kExitPeerClosed) << "rank 0 saw no typed EOF";
    EXPECT_EQ(run.status[2], kExitPeerClosed) << "rank 2 saw no typed EOF";
}

TEST(Chaos, KillMidAlltoallvIsTypedNotSigpipe) {
    // Regression for the SIGPIPE hole: before MSG_NOSIGNAL a survivor
    // blocked in send() to the dead rank died of SIGPIPE (status 141)
    // instead of reporting a typed PeerClosed.
    const auto run = runMesh("chaos-alltoallv", 3, 3,
                             {{"GEO_FAULT", "kill:rank=2:op=alltoallv"}},
                             /*deadlineSeconds=*/60.0);
    EXPECT_EQ(run.status[2], 128 + SIGKILL);
    for (const int rank : {0, 1}) {
        EXPECT_NE(run.status[static_cast<std::size_t>(rank)], 128 + SIGPIPE)
            << "rank " << rank << " died of SIGPIPE";
        EXPECT_EQ(run.status[static_cast<std::size_t>(rank)], kExitPeerClosed);
    }
}

TEST(Chaos, DroppedPeerSurfacesAsDeadlineTimeout) {
    // drop wedges rank 1 without closing its sockets: survivors see
    // silence, not EOF, and must hit the 750 ms inactivity deadline.
    const double deadlineMs = 750.0;
    const auto run = runMesh(
        "chaos-allreduce", 3, 3,
        {{"GEO_FAULT", "drop:rank=1:op=allreduce"},
         {"GEO_COMM_TIMEOUT_MS", "750"}},
        /*deadlineSeconds=*/60.0, /*reapAfterExits=*/2);
    EXPECT_EQ(run.status[0], kExitTimeout);
    EXPECT_EQ(run.status[2], kExitTimeout);
    EXPECT_EQ(run.status[1], 128 + SIGKILL);  // the harness reaped the wedge
    // "Within 2× the deadline" plus mesh setup/exec slack on a loaded box.
    EXPECT_LT(run.elapsedSeconds, 2.0 * deadlineMs / 1000.0 + 15.0);
}

TEST(Chaos, AbsentRankFailsHandshakeTyped) {
    // Spawn only 2 ranks of a 3-mesh: mesh construction must fail with a
    // typed Timeout (accept side) or ConnectFailed (dial side) within the
    // connect deadline — never hang.
    const auto run = runMesh("handshake", 2, 3,
                             {{"GEO_CONNECT_TIMEOUT_MS", "500"}},
                             /*deadlineSeconds=*/60.0);
    for (const int rank : {0, 1}) {
        const int st = run.status[static_cast<std::size_t>(rank)];
        EXPECT_TRUE(st == kExitTimeout || st == kExitConnectFailed)
            << "rank " << rank << " exited " << st;
    }
    EXPECT_LT(run.elapsedSeconds, 20.0);
}

// ------------------------------------------------- gtest: geo_launch

TEST(Supervision, TearsDownSurvivorsOnRankDeath) {
    // Rank 0 SIGKILLs itself at the fault point; rank 1 sleeps 60 s. The
    // launcher must SIGTERM/SIGKILL rank 1 and report the first failure
    // (128+SIGKILL) long before the sleep would end.
    const ScopedEnv fault("GEO_FAULT", "kill:rank=0:op=step");
    const double start = nowSeconds();
    EXPECT_EQ(runLaunch("--grace-ms 500 -n 2 -- " + selfExe() +
                        " --worker=faultsleep"),
              128 + SIGKILL);
    EXPECT_LT(nowSeconds() - start, 30.0);
}

TEST(Supervision, RestartRecoversFromOnceFault) {
    const std::string marker =
        "/tmp/geo_fault_once_" + std::to_string(::getpid()) + ".marker";
    std::remove(marker.c_str());
    const ScopedEnv fault("GEO_FAULT",
                          "exit:code=7:rank=1:op=step:once=" + marker);
    // Without --restart the one-shot failure is fatal...
    EXPECT_EQ(runLaunch("-n 2 -- " + selfExe() + " --worker=steponce"), 7);
    // ...and with it the second attempt (marker now claimed) succeeds.
    std::remove(marker.c_str());
    EXPECT_EQ(runLaunch("--restart 1 -n 2 -- " + selfExe() +
                        " --worker=steponce"),
              0);
    EXPECT_EQ(::access(marker.c_str(), F_OK), 0) << "once-marker not created";
    std::remove(marker.c_str());
}

// ------------------------------------------- gtest: checkpoint/restart

TEST(CheckpointRestart, KilledAndResumedTimelineIsBitwiseIdentical) {
    const std::string tag = std::to_string(::getpid());
    const std::string outClean = "/tmp/geo_fault_tl_clean_" + tag + ".dump";
    const std::string outFault = "/tmp/geo_fault_tl_fault_" + tag + ".dump";
    const std::string ckClean = "/tmp/geo_fault_tl_clean_" + tag + ".ckpt";
    const std::string ckFault = "/tmp/geo_fault_tl_fault_" + tag + ".ckpt";
    const std::string marker = "/tmp/geo_fault_tl_" + tag + ".marker";
    for (const auto& p : {outClean, outFault, ckClean, ckFault, marker})
        std::remove(p.c_str());

    const std::string exe = selfExe();
    // Uninterrupted reference run.
    ASSERT_EQ(runCmd(exe + " --worker=timeline " + outClean + " " + ckClean), 0);

    {
        // Kill the run at step 3 (steps 0-2 are checkpointed), then resume
        // from the checkpoint with the once-marker already claimed.
        const ScopedEnv fault("GEO_FAULT", "kill:op=step:seq=3:once=" + marker);
        ASSERT_EQ(runCmd(exe + " --worker=timeline " + outFault + " " + ckFault),
                  128 + SIGKILL);
        EXPECT_TRUE(readFile(outFault).empty()) << "dump written before the end";
        ASSERT_EQ(runCmd(exe + " --worker=timeline " + outFault + " " + ckFault +
                         " --resume"),
                  0);
    }

    const auto clean = readFile(outClean);
    const auto resumed = readFile(outFault);
    ASSERT_FALSE(clean.empty());
    ASSERT_EQ(resumed.size(), clean.size());
    EXPECT_EQ(std::memcmp(resumed.data(), clean.data(), clean.size()), 0)
        << "resumed timeline diverged from the uninterrupted run";

    // The resumed run must have actually resumed (checkpoint cursor says
    // step 3), not silently restarted from scratch.
    EXPECT_EQ(geo::core::loadCheckpoint(ckFault).step,
              static_cast<std::uint64_t>(kTimelineSteps));

    for (const auto& p : {outClean, outFault, ckClean, ckFault, marker})
        std::remove(p.c_str());
}

}  // namespace

int main(int argc, char** argv) {
    // Worker dispatch: the mini-launcher / geo_launch re-exec this binary
    // with a --worker flag. Must run before InitGoogleTest.
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--worker=chaos-allreduce")
            return chaosCollectiveWorkerMain(/*alltoall=*/false);
        if (arg == "--worker=chaos-alltoallv")
            return chaosCollectiveWorkerMain(/*alltoall=*/true);
        if (arg == "--worker=handshake") return handshakeWorkerMain();
        if (arg == "--worker=steponce") return stepOnceWorkerMain();
        if (arg == "--worker=faultsleep") return faultSleepWorkerMain();
        if (arg == "--worker=timeline") {
            if (i + 2 >= argc) {
                std::fprintf(stderr, "--worker=timeline needs OUT CKPT\n");
                return 64;
            }
            const bool resume =
                i + 3 < argc && std::strcmp(argv[i + 3], "--resume") == 0;
            return timelineWorkerMain(argv[i + 1], argv[i + 2], resume);
        }
    }

    // gtest mode: scrub the worker/fault environment so in-process legs
    // stay on the simulator and child meshes start from a clean slate.
    for (const char* var :
         {"GEO_RANK", "GEO_RANKS", "GEO_TRANSPORT", "GEO_SOCKET_DIR",
          "GEO_PORT_BASE", "GEO_FAULT", "GEO_COMM_TIMEOUT_MS",
          "GEO_CONNECT_TIMEOUT_MS", "GEO_RESTART_ATTEMPT"})
        unsetenv(var);

    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
